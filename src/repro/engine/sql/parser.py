"""Recursive-descent SQL parser: token stream → syntax tree.

Supported subset (everything the planner can lower):

* ``SELECT`` expressions with aliases, ``*``, aggregate functions
  (``SUM/AVG/MIN/MAX/COUNT/COUNT(*)/COUNT(DISTINCT x)``);
* ``FROM`` a base table or a derived table ``(SELECT ...) AS t``, plus
  ``[INNER|LEFT|SEMI|ANTI] JOIN <table | (SELECT ...)> ON`` equality
  conditions (conjunctions of ``a = b``);
* ``WHERE`` with arithmetic, comparisons, ``AND/OR/NOT``, ``BETWEEN``,
  ``IN (list)``, ``[NOT] IN (SELECT ...)``, ``[NOT] EXISTS (SELECT ...)``
  (including correlated forms), ``[NOT] LIKE``, ``IS [NOT] NULL``, and
  scalar subqueries (uncorrelated anywhere, correlated as a top-level
  comparison conjunct);
* ``GROUP BY`` plain columns or SELECT aliases, ``HAVING`` (which may
  name SELECT aliases);
* ``ORDER BY`` output columns with ``ASC/DESC``, ``LIMIT``;
* ``UNION`` and ``UNION ALL`` between SELECTs;
* ``CASE WHEN`` in any expression position, ``EXTRACT(YEAR FROM d)``,
  ``SUBSTRING(s FROM i FOR n)`` / ``SUBSTRING(s, i, n)``,
  ``UPPER/LOWER/CONCAT``, ``DATE 'yyyy-mm-dd'`` and date
  ``+/- INTERVAL 'n' DAY|MONTH|YEAR``.

Never-crash contract: the parser is depth-bounded (``MAX_DEPTH``) so
pathological nesting raises :class:`SqlError` long before Python's
recursion limit, every token mismatch raises :class:`SqlError` with the
offending token's line/column, and each grammar loop consumes at least
one token, so parsing always terminates.
"""

from __future__ import annotations

import re

from . import ast as A
from .errors import SqlError
from .lexer import Token, tokenize

__all__ = ["parse_statement", "MAX_DEPTH"]

# Bound on combined expression/subquery nesting. Each level costs ~10-15
# Python frames, so 50 keeps worst-case stack use far below the
# interpreter's recursion limit while allowing any sane query.
MAX_DEPTH = 50

_CMP_TOKENS = {"EQ": "=", "NE": "<>", "LT": "<", "LE": "<=", "GT": ">",
               "GE": ">="}
_INT_RE = re.compile(r"^-?\d{1,9}$")


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0
        self._depth = 0

    # -- token plumbing -------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if self.pos < len(self.tokens) - 1:
            self.pos += 1
        return token

    def accept(self, kind: str) -> Token | None:
        if self.peek().kind == kind:
            return self.next()
        return None

    def expect(self, kind: str) -> Token:
        token = self.next()
        if token.kind != kind:
            raise self._err(
                f"expected {kind} but found {token.kind} ({token.value!r})",
                token,
            )
        return token

    def _err(self, message: str, token: Token | None = None) -> SqlError:
        token = token if token is not None else self.peek()
        return SqlError(message, line=token.line, column=token.column)

    def _enter(self) -> None:
        self._depth += 1
        if self._depth > MAX_DEPTH:
            raise self._err(f"query nested too deeply (limit {MAX_DEPTH})")

    # -- statements -----------------------------------------------------

    def parse_statement(self) -> A.Node:
        self._enter()
        try:
            stmt: A.Node = self._parse_select()
            while self.accept("UNION"):
                all_ = bool(self.accept("ALL"))
                right = self._parse_select()
                stmt = A.UnionStmt(stmt, right, all_)
            return stmt
        finally:
            self._depth -= 1

    def _parse_select(self) -> A.SelectStmt:
        self.expect("SELECT")
        items = self._select_list()
        self.expect("FROM")
        from_item = self._from_item()
        joins = []
        while self.peek().kind in ("JOIN", "INNER", "LEFT", "SEMI", "ANTI"):
            joins.append(self._join_clause())

        where = self._expr() if self.accept("WHERE") else None

        group_by: tuple = ()
        if self.accept("GROUP"):
            self.expect("BY")
            group_by = tuple(self._name_list())

        having = self._expr() if self.accept("HAVING") else None

        order_by = []
        if self.accept("ORDER"):
            self.expect("BY")
            while True:
                name = self._identifier("ORDER BY column")
                direction = "asc"
                if self.accept("DESC"):
                    direction = "desc"
                else:
                    self.accept("ASC")
                order_by.append((name, direction))
                if not self.accept("COMMA"):
                    break

        limit = None
        if self.accept("LIMIT"):
            token = self.expect("NUMBER")
            if "." in token.value:
                raise self._err("LIMIT must be an integer", token)
            limit = int(token.value)

        self.accept("SEMI_COLON")
        return A.SelectStmt(
            items=tuple(items),
            from_item=from_item,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=tuple(order_by),
            limit=limit,
        )

    # -- clauses --------------------------------------------------------

    def _select_list(self) -> list[A.SelectItem]:
        items: list[A.SelectItem] = []
        while True:
            if self.accept("STAR"):
                items.append(A.SelectItem(expr=None, alias=None))
            else:
                expr = self._expr()
                alias = None
                if self.accept("AS"):
                    alias = self._identifier("alias")
                elif self.peek().kind == "IDENT":
                    alias = self.next().value
                if alias is None:
                    alias = expr.name if isinstance(expr, A.Col) else f"col{len(items)}"
                items.append(A.SelectItem(expr=expr, alias=alias))
            if not self.accept("COMMA"):
                return items

    def _from_item(self) -> A.Node:
        if self.accept("LPAREN"):
            query = self.parse_statement()
            self.expect("RPAREN")
            return A.DerivedTable(query, self._maybe_alias())
        name = self._identifier("table name")
        return A.TableRef(name, self._maybe_alias())

    def _join_clause(self) -> A.JoinClause:
        how = "inner"
        kind = self.next().kind
        if kind in ("INNER", "LEFT", "SEMI", "ANTI"):
            how = kind.lower()
            self.expect("JOIN")
        item = self._from_item()
        self.expect("ON")
        on = [self._join_equality()]
        while self.accept("AND"):
            on.append(self._join_equality())
        return A.JoinClause(how, item, tuple(on))

    def _join_equality(self) -> tuple[str, str]:
        left = self._identifier("join column")
        self.expect("EQ")
        right = self._identifier("join column")
        return left, right

    def _maybe_alias(self) -> str | None:
        if self.accept("AS"):
            return self._identifier("alias")
        if self.peek().kind == "IDENT" and self.peek(1).kind != "DOT":
            return self.next().value
        return None

    def _name_list(self) -> list[str]:
        names = [self._identifier("column")]
        while self.accept("COMMA"):
            names.append(self._identifier("column"))
        return names

    def _identifier(self, what: str) -> str:
        token = self.next()
        if token.kind != "IDENT":
            raise self._err(f"expected {what}, found {token.value!r}", token)
        if self.accept("DOT"):
            # Qualified name: alias.column — column names are globally
            # unique in this engine, keep only the column part.
            return self.expect("IDENT").value
        return token.value

    # -- expressions ----------------------------------------------------

    def _expr(self) -> A.Node:
        self._enter()
        try:
            return self._or_expr()
        finally:
            self._depth -= 1

    def _or_expr(self) -> A.Node:
        left = self._and_expr()
        while self.accept("OR"):
            left = A.Binary("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> A.Node:
        left = self._not_expr()
        while self.accept("AND"):
            left = A.Binary("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> A.Node:
        if self.peek().kind == "NOT":
            if self.peek(1).kind == "EXISTS":
                self.next()
                return self._exists(negated=True)
            self.next()
            self._enter()
            try:
                return A.Unary("NOT", self._not_expr())
            finally:
                self._depth -= 1
        if self.peek().kind == "EXISTS":
            return self._exists(negated=False)
        return self._comparison()

    def _exists(self, negated: bool) -> A.Exists:
        self.expect("EXISTS")
        self.expect("LPAREN")
        query = self.parse_statement()
        self.expect("RPAREN")
        return A.Exists(query, negated)

    def _comparison(self) -> A.Node:
        left = self._additive()
        kind = self.peek().kind
        if kind in _CMP_TOKENS:
            self.next()
            return A.Binary(_CMP_TOKENS[kind], left, self._additive())
        if self.accept("BETWEEN"):
            lo = self._additive()
            self.expect("AND")
            hi = self._additive()
            return A.Between(left, lo, hi)
        negated = False
        if self.peek().kind == "NOT" and self.peek(1).kind in ("IN", "LIKE", "BETWEEN"):
            self.next()
            negated = True
            if self.accept("BETWEEN"):
                lo = self._additive()
                self.expect("AND")
                hi = self._additive()
                return A.Unary("NOT", A.Between(left, lo, hi))
        if self.accept("IN"):
            return self._in_tail(left, negated)
        if self.accept("LIKE"):
            pattern = self.expect("STRING").value
            return A.LikePred(left, pattern, negated)
        if self.accept("IS"):
            is_not = bool(self.accept("NOT"))
            self.expect("NULL")
            return A.IsNullPred(left, is_not)
        return left

    def _in_tail(self, left: A.Node, negated: bool) -> A.Node:
        self.expect("LPAREN")
        if self.peek().kind == "SELECT":
            query = self.parse_statement()
            self.expect("RPAREN")
            return A.InSelect(left, query, negated)
        values = [self._literal_value()]
        while self.accept("COMMA"):
            values.append(self._literal_value())
        self.expect("RPAREN")
        return A.InList(left, tuple(values), negated)

    def _literal_value(self):
        token = self.next()
        if token.kind == "NUMBER":
            return float(token.value) if "." in token.value else int(token.value)
        if token.kind == "STRING":
            return token.value
        if token.kind == "MINUS":
            inner = self._literal_value()
            if not isinstance(inner, (int, float)):
                raise self._err("expected a literal, found a string", token)
            return -inner
        raise self._err(f"expected a literal, found {token.value!r}", token)

    def _additive(self) -> A.Node:
        left = self._multiplicative()
        while True:
            if self.accept("PLUS"):
                left = A.Binary("+", left, self._multiplicative())
            elif self.accept("MINUS"):
                left = A.Binary("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> A.Node:
        left = self._unary()
        while True:
            if self.accept("STAR"):
                left = A.Binary("*", left, self._unary())
            elif self.accept("SLASH"):
                left = A.Binary("/", left, self._unary())
            else:
                return left

    def _unary(self) -> A.Node:
        if self.accept("MINUS"):
            self._enter()
            try:
                return A.Unary("-", self._unary())
            finally:
                self._depth -= 1
        return self._primary()

    def _primary(self) -> A.Node:
        token = self.peek()
        if token.kind == "NUMBER":
            self.next()
            return A.Number(token.value)
        if token.kind == "STRING":
            self.next()
            return A.String(token.value)
        if token.kind == "DATE":
            self.next()
            return A.DateLit(self.expect("STRING").value)
        if token.kind == "INTERVAL":
            self.next()
            amount = self.expect("STRING")
            if not _INT_RE.match(amount.value):
                raise self._err("INTERVAL amount must be an integer", amount)
            unit = self.next()
            if unit.kind not in ("DAY", "MONTH", "YEAR"):
                raise self._err(f"unsupported interval unit {unit.value!r}", unit)
            return A.Interval(int(amount.value), unit.kind)
        if token.kind == "CASE":
            return self._case()
        if token.kind in ("SUM", "AVG", "MIN", "MAX", "COUNT"):
            return self._aggregate_call()
        if token.kind == "EXTRACT":
            self.next()
            self.expect("LPAREN")
            self.expect("YEAR")
            self.expect("FROM")
            inner = self._expr()
            self.expect("RPAREN")
            return A.ExtractYearExpr(inner)
        if token.kind == "SUBSTRING":
            return self._substring()
        if token.kind in ("UPPER", "LOWER"):
            self.next()
            self.expect("LPAREN")
            inner = self._expr()
            self.expect("RPAREN")
            return A.Func(token.kind, (inner,))
        if token.kind == "CONCAT":
            self.next()
            self.expect("LPAREN")
            args = [self._expr()]
            while self.accept("COMMA"):
                args.append(self._expr())
            self.expect("RPAREN")
            if len(args) < 2:
                raise self._err("CONCAT requires at least two arguments", token)
            return A.Func("CONCAT", tuple(args))
        if token.kind == "LPAREN":
            self.next()
            if self.peek().kind == "SELECT":
                query = self.parse_statement()
                self.expect("RPAREN")
                return A.SubqueryExpr(query)
            inner = self._expr()
            self.expect("RPAREN")
            return inner
        if token.kind == "IDENT":
            return A.Col(self._identifier("column"))
        if token.kind == "EOF":
            raise self._err("unexpected end of input", token)
        raise self._err(f"unexpected token {token.value!r}", token)

    def _case(self) -> A.CaseWhen:
        self.expect("CASE")
        whens = []
        self.expect("WHEN")
        while True:
            cond = self._expr()
            self.expect("THEN")
            value = self._expr()
            whens.append((cond, value))
            if not self.accept("WHEN"):
                break
        otherwise = self._expr() if self.accept("ELSE") else None
        self.expect("END")
        return A.CaseWhen(tuple(whens), otherwise)

    def _substring(self) -> A.SubstringFunc:
        self.next()
        self.expect("LPAREN")
        inner = self._expr()
        if self.accept("FROM"):
            start = self._int_arg("SUBSTRING start")
            self.expect("FOR")
            length = self._int_arg("SUBSTRING length")
        else:
            self.expect("COMMA")
            start = self._int_arg("SUBSTRING start")
            self.expect("COMMA")
            length = self._int_arg("SUBSTRING length")
        self.expect("RPAREN")
        if start < 1:
            raise self._err("SUBSTRING start must be >= 1")
        return A.SubstringFunc(inner, start, length)

    def _int_arg(self, what: str) -> int:
        token = self.expect("NUMBER")
        if "." in token.value:
            raise self._err(f"{what} must be an integer literal", token)
        return int(token.value)

    def _aggregate_call(self) -> A.Agg:
        func = self.next().kind
        self.expect("LPAREN")
        if func == "COUNT" and self.accept("STAR"):
            self.expect("RPAREN")
            return A.Agg("COUNT", None, star=True)
        if func == "COUNT" and self.accept("DISTINCT"):
            inner = self._expr()
            self.expect("RPAREN")
            return A.Agg("COUNT", inner, distinct=True)
        inner = self._expr()
        self.expect("RPAREN")
        return A.Agg(func, inner)


def parse_statement(text: str) -> A.Node:
    """Parse SQL text into a syntax tree; raises :class:`SqlError` on any
    malformed input."""
    parser = _Parser(tokenize(text))
    stmt = parser.parse_statement()
    trailing = parser.peek()
    if trailing.kind != "EOF":
        raise SqlError(
            f"unexpected trailing input {trailing.value!r}",
            line=trailing.line,
            column=trailing.column,
        )
    return stmt
