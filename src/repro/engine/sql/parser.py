"""SQL front-end: parse a SELECT statement into an engine plan.

Supported subset (everything the engine executes):

* ``SELECT`` expressions with aliases, ``*``, aggregate functions
  (``SUM/AVG/MIN/MAX/COUNT/COUNT(*)/COUNT(DISTINCT x)``);
* ``FROM`` a base table or a derived table ``(SELECT ...) AS t``, plus
  ``[INNER|LEFT|SEMI|ANTI] JOIN <table | (SELECT ...)> ON`` equality
  conditions (conjunctions of ``a = b``);
* ``WHERE`` with arithmetic, comparisons, ``AND/OR/NOT``, ``BETWEEN``,
  ``IN (list)``, ``[NOT] LIKE``, ``IS [NOT] NULL``, scalar subqueries,
  and uncorrelated ``[NOT] IN (SELECT ...)`` (planned as semi/anti
  joins);
* ``GROUP BY`` plain columns or SELECT aliases, ``HAVING``;
* ``ORDER BY`` output columns with ``ASC/DESC``, ``LIMIT``;
* ``UNION ALL`` between SELECTs;
* ``CASE WHEN``, ``EXTRACT(YEAR FROM d)``,
  ``SUBSTRING(s FROM i FOR n)`` / ``SUBSTRING(s, i, n)``,
  ``DATE 'yyyy-mm-dd'`` and date ``+/- INTERVAL 'n' DAY|MONTH|YEAR``
  (folded at parse time).

Example::

    from repro.engine.sql import sql
    plan = sql(db, \"\"\"
        SELECT l_returnflag, SUM(l_quantity) AS qty
        FROM lineitem WHERE l_shipdate <= DATE '1998-09-02'
        GROUP BY l_returnflag ORDER BY qty DESC LIMIT 5\"\"\")
    result = execute(db, plan)
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

from ..expr import Expr, Literal, case, col, lit, scalar
from ..plan import Q, agg
from ..optimizer import output_columns
from ..table import Database
from .lexer import SqlSyntaxError, Token, tokenize

__all__ = ["sql", "parse", "SqlSyntaxError"]


@dataclass
class _SelectItem:
    alias: str
    expr: Expr
    is_star: bool = False


@dataclass
class _JoinClause:
    how: str
    table: str
    on: list[tuple[str, str]]


@dataclass
class _SemiJoin:
    """An uncorrelated ``[NOT] IN (SELECT col FROM ...)`` conjunct."""

    left_column: str
    subplan: Q
    sub_column: str
    negated: bool


@dataclass
class _Interval:
    days: int = 0
    months: int = 0
    years: int = 0


class _Parser:
    """Recursive-descent parser producing engine plans directly."""

    def __init__(self, db: Database, tokens: list[Token]):
        self.db = db
        self.tokens = tokens
        self.pos = 0
        self._aggs: dict[str, object] = {}
        self._agg_counter = 0
        self._semijoins: list[_SemiJoin] = []
        self._in_conjunctive_where = False

    # -- token plumbing -------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def accept(self, kind: str) -> Token | None:
        if self.peek().kind == kind:
            return self.next()
        return None

    def expect(self, kind: str) -> Token:
        token = self.next()
        if token.kind != kind:
            raise SqlSyntaxError(
                f"expected {kind} but found {token.kind} ({token.value!r}) "
                f"at position {token.position}"
            )
        return token

    # -- statement ------------------------------------------------------

    def parse_query(self) -> Q:
        plan = self._parse_select()
        while self.accept("UNION"):
            self.expect("ALL")
            # Each branch gets fresh aggregate/semijoin state.
            branch = _Parser(self.db, self.tokens)
            branch.pos = self.pos
            right = branch._parse_select()
            self.pos = branch.pos
            plan = plan.union_all(right)
        return plan

    def _parse_select(self) -> Q:
        self.expect("SELECT")
        items = self._select_list()
        self.expect("FROM")
        plan = self._from_clause()

        where_expr = None
        if self.accept("WHERE"):
            self._in_conjunctive_where = True
            where_expr = self._expr()
            self._in_conjunctive_where = False
        for semijoin in self._semijoins:
            sub = semijoin.subplan.project(__sub=col(semijoin.sub_column))
            plan = plan.join(
                sub,
                on=[(semijoin.left_column, "__sub")],
                how="anti" if semijoin.negated else "semi",
            )
        self._semijoins = []
        if where_expr is not None:
            plan = plan.filter(where_expr)

        group_names: list[str] = []
        if self.accept("GROUP"):
            self.expect("BY")
            group_names = self._name_list()

        having_expr = None
        if self.accept("HAVING"):
            having_expr = self._expr()

        plan = self._plan_projection(plan, items, group_names, having_expr)

        if self.accept("ORDER"):
            self.expect("BY")
            keys = []
            while True:
                name = self._identifier("ORDER BY column")
                direction = "asc"
                if self.accept("DESC"):
                    direction = "desc"
                else:
                    self.accept("ASC")
                keys.append((name, direction))
                if not self.accept("COMMA"):
                    break
            plan = plan.sort(*keys)

        if self.accept("LIMIT"):
            plan = plan.limit(int(self.expect("NUMBER").value))
        self.accept("SEMI_COLON")
        return plan

    # -- clauses ----------------------------------------------------------

    def _select_list(self) -> list[_SelectItem]:
        items: list[_SelectItem] = []
        while True:
            if self.accept("STAR"):
                items.append(_SelectItem(alias="*", expr=lit(0), is_star=True))
            else:
                expr = self._expr()
                alias = None
                if self.accept("AS"):
                    alias = self._identifier("alias")
                elif self.peek().kind == "IDENT":
                    alias = self.next().value
                if alias is None:
                    from ..expr import ColRef

                    if isinstance(expr, ColRef):
                        alias = expr.name
                    else:
                        alias = f"col{len(items)}"
                items.append(_SelectItem(alias=alias, expr=expr))
            if not self.accept("COMMA"):
                return items

    def _from_clause(self) -> Q:
        if self.peek().kind == "LPAREN":
            # Derived table: FROM (SELECT ...) [AS alias]
            self.next()
            sub = _Parser(self.db, self.tokens)
            sub.pos = self.pos
            plan = sub.parse_query()
            self.pos = sub.pos
            self.expect("RPAREN")
            self._maybe_alias()
        else:
            table = self._identifier("table name")
            self._maybe_alias()
            plan = Q(self.db).scan(table)
        while self.peek().kind in ("JOIN", "INNER", "LEFT", "SEMI", "ANTI"):
            how = "inner"
            kind = self.next().kind
            if kind in ("INNER", "LEFT", "SEMI", "ANTI"):
                how = {"INNER": "inner", "LEFT": "left", "SEMI": "semi", "ANTI": "anti"}[kind]
                self.expect("JOIN")
            if self.peek().kind == "LPAREN":
                self.next()
                sub = _Parser(self.db, self.tokens)
                sub.pos = self.pos
                right_plan: Q | str = sub.parse_query()
                self.pos = sub.pos
                self.expect("RPAREN")
                self._maybe_alias()
                right_cols = set(output_columns(right_plan.node, self.db))
            else:
                right_plan = self._identifier("table name")
                self._maybe_alias()
                right_cols = set(self.db.table(right_plan).column_names)
            self.expect("ON")
            on = [self._join_equality()]
            while self.accept("AND"):
                on.append(self._join_equality())
            # Orient each pair: left side of the pair must come from the
            # plan built so far, the other from the newly joined table.
            oriented = []
            for a, b in on:
                if b in right_cols and a not in right_cols:
                    oriented.append((a, b))
                elif a in right_cols and b not in right_cols:
                    oriented.append((b, a))
                elif b in right_cols:
                    oriented.append((a, b))
                else:
                    raise SqlSyntaxError(
                        f"join condition {a} = {b} does not reference the joined table"
                    )
            plan = plan.join(right_plan, on=oriented, how=how)
        return plan

    def _maybe_alias(self) -> None:
        if self.accept("AS"):
            self._identifier("alias")
        elif self.peek().kind == "IDENT" and self.peek(1).kind not in ("DOT",):
            # bare alias like "lineitem l"
            self.next()

    def _join_equality(self) -> tuple[str, str]:
        left = self._identifier("join column")
        self.expect("EQ")
        right = self._identifier("join column")
        return left, right

    def _name_list(self) -> list[str]:
        names = [self._identifier("column")]
        while self.accept("COMMA"):
            names.append(self._identifier("column"))
        return names

    def _identifier(self, what: str) -> str:
        token = self.next()
        if token.kind != "IDENT":
            raise SqlSyntaxError(f"expected {what}, found {token.value!r}")
        if self.accept("DOT"):
            # qualified name: alias.column — column names are globally
            # unique in this engine, keep only the column part.
            return self.expect("IDENT").value
        return token.value

    # -- projection planning ---------------------------------------------

    def _plan_projection(
        self,
        plan: Q,
        items: list[_SelectItem],
        group_names: list[str],
        having_expr: Expr | None,
    ) -> Q:
        has_star = any(item.is_star for item in items)
        if not self._aggs and not group_names:
            if has_star:
                if len(items) > 1:
                    raise SqlSyntaxError("SELECT * cannot mix with other items")
                return plan
            return plan.project(**{item.alias: item.expr for item in items})

        if has_star:
            raise SqlSyntaxError("SELECT * cannot be combined with aggregation")

        # Group keys may name SELECT aliases of computed expressions; those
        # must be materialized before the aggregate.
        alias_exprs = {item.alias: item.expr for item in items}
        available = set(output_columns(plan.node, self.db))
        pre_project: dict[str, Expr] = {}
        for name in group_names:
            if name not in available:
                if name not in alias_exprs:
                    raise SqlSyntaxError(f"GROUP BY column {name!r} is not in scope")
                pre_project[name] = alias_exprs[name]
        if pre_project:
            needed: set[str] = set()
            for spec in self._aggs.values():
                if spec.expr is not None:
                    needed |= spec.expr.references()
            for expr in pre_project.values():
                needed |= expr.references()
            keep = {name: col(name) for name in needed & available}
            keep.update({g: col(g) for g in group_names if g in available})
            keep.update(pre_project)
            plan = plan.project(**keep)

        plan = plan.aggregate(by=group_names, **self._aggs)
        if having_expr is not None:
            plan = plan.filter(having_expr)
        # Group-key select items were materialized before the aggregate
        # (possibly as computed expressions); after it they are plain
        # columns named by their alias.
        final = {
            item.alias: col(item.alias) if item.alias in group_names else item.expr
            for item in items
        }
        return plan.project(**final)

    # -- expressions ------------------------------------------------------

    def _expr(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self.accept("OR"):
            left = left | self._and_expr()
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self.accept("AND"):
            right = self._not_expr()
            if right is None:
                continue
            left = right if left is None else (left & right)
        return left

    def _not_expr(self) -> Expr:
        if self.accept("NOT"):
            operand = self._not_expr()
            return ~operand
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._additive()
        kind = self.peek().kind
        if kind in ("EQ", "NE", "LT", "LE", "GT", "GE"):
            self.next()
            right = self._additive()
            ops = {"EQ": "__eq__", "NE": "__ne__", "LT": "__lt__",
                   "LE": "__le__", "GT": "__gt__", "GE": "__ge__"}
            return getattr(left, ops[kind])(right)
        if self.accept("BETWEEN"):
            lo = self._additive()
            self.expect("AND")
            hi = self._additive()
            return (left >= lo) & (left <= hi)
        negated = False
        if self.peek().kind == "NOT" and self.peek(1).kind in ("IN", "LIKE"):
            self.next()
            negated = True
        if self.accept("IN"):
            return self._in_tail(left, negated)
        if self.accept("LIKE"):
            pattern = self.expect("STRING").value
            return left.not_like(pattern) if negated else left.like(pattern)
        if self.accept("IS"):
            is_not = bool(self.accept("NOT"))
            self.expect("NULL")
            return left.is_not_null() if is_not else left.is_null()
        return left

    def _in_tail(self, left: Expr, negated: bool) -> Expr:
        self.expect("LPAREN")
        if self.peek().kind == "SELECT":
            from ..expr import ColRef

            if not isinstance(left, ColRef):
                raise SqlSyntaxError("IN (SELECT ...) requires a plain column on the left")
            if not self._in_conjunctive_where:
                raise SqlSyntaxError("IN (SELECT ...) is only supported in WHERE conjunctions")
            sub = _Parser(self.db, self.tokens)
            sub.pos = self.pos
            subplan = sub.parse_query()
            self.pos = sub.pos
            self.expect("RPAREN")
            sub_cols = output_columns(subplan.node, self.db)
            if len(sub_cols) != 1:
                raise SqlSyntaxError("IN subquery must produce exactly one column")
            self._semijoins.append(_SemiJoin(left.name, subplan, sub_cols[0], negated))
            return None  # removed from the boolean tree by _and_expr
        values = [self._literal_value()]
        while self.accept("COMMA"):
            values.append(self._literal_value())
        self.expect("RPAREN")
        out = left.isin(values)
        return ~out if negated else out

    def _literal_value(self):
        token = self.next()
        if token.kind == "NUMBER":
            return float(token.value) if "." in token.value else int(token.value)
        if token.kind == "STRING":
            return token.value
        if token.kind == "MINUS":
            inner = self._literal_value()
            return -inner
        raise SqlSyntaxError(f"expected a literal, found {token.value!r}")

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            if self.accept("PLUS"):
                left = self._fold_date_arith(left, self._multiplicative(), +1)
            elif self.accept("MINUS"):
                left = self._fold_date_arith(left, self._multiplicative(), -1)
            else:
                return left

    def _fold_date_arith(self, left: Expr, right, sign: int) -> Expr:
        if isinstance(right, _Interval):
            if not isinstance(left, Literal) or not isinstance(left.value, str):
                raise SqlSyntaxError("INTERVAL arithmetic needs a DATE literal")
            base = _dt.date.fromisoformat(left.value)
            year = base.year + sign * right.years
            month = base.month + sign * right.months
            year += (month - 1) // 12
            month = (month - 1) % 12 + 1
            day = min(base.day, _days_in_month(year, month))
            moved = _dt.date(year, month, day) + _dt.timedelta(days=sign * right.days)
            return lit(moved.isoformat())
        return (left + right) if sign > 0 else (left - right)

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            if self.accept("STAR"):
                left = left * self._unary()
            elif self.accept("SLASH"):
                left = left / self._unary()
            else:
                return left

    def _unary(self) -> Expr:
        if self.accept("MINUS"):
            return lit(0) - self._unary()
        return self._primary()

    def _primary(self):
        token = self.peek()
        if token.kind == "NUMBER":
            self.next()
            value = float(token.value) if "." in token.value else int(token.value)
            return lit(value)
        if token.kind == "STRING":
            self.next()
            return lit(token.value)
        if token.kind == "DATE":
            self.next()
            return lit(self.expect("STRING").value)
        if token.kind == "INTERVAL":
            self.next()
            amount = int(self.expect("STRING").value)
            unit = self.next()
            if unit.kind == "DAY":
                return _Interval(days=amount)
            if unit.kind == "MONTH":
                return _Interval(months=amount)
            if unit.kind == "YEAR":
                return _Interval(years=amount)
            raise SqlSyntaxError(f"unsupported interval unit {unit.value!r}")
        if token.kind == "CASE":
            return self._case()
        if token.kind in ("SUM", "AVG", "MIN", "MAX", "COUNT"):
            return self._aggregate_call()
        if token.kind == "EXTRACT":
            self.next()
            self.expect("LPAREN")
            self.expect("YEAR")
            self.expect("FROM")
            inner = self._expr()
            self.expect("RPAREN")
            return inner.year()
        if token.kind == "SUBSTRING":
            self.next()
            self.expect("LPAREN")
            inner = self._expr()
            if self.accept("FROM"):
                start = int(self.expect("NUMBER").value)
                self.expect("FOR")
                length = int(self.expect("NUMBER").value)
            else:
                self.expect("COMMA")
                start = int(self.expect("NUMBER").value)
                self.expect("COMMA")
                length = int(self.expect("NUMBER").value)
            self.expect("RPAREN")
            return inner.substring(start, length)
        if token.kind == "LPAREN":
            self.next()
            if self.peek().kind == "SELECT":
                sub = _Parser(self.db, self.tokens)
                sub.pos = self.pos
                subplan = sub.parse_query()
                self.pos = sub.pos
                self.expect("RPAREN")
                return scalar(subplan)
            inner = self._expr()
            self.expect("RPAREN")
            return inner
        if token.kind == "IDENT":
            return col(self._identifier("column"))
        raise SqlSyntaxError(f"unexpected token {token.value!r} at {token.position}")

    def _case(self) -> Expr:
        self.expect("CASE")
        whens = []
        while self.accept("WHEN"):
            cond = self._expr()
            self.expect("THEN")
            value = self._expr()
            whens.append((cond, value))
        otherwise = lit(0.0)
        if self.accept("ELSE"):
            otherwise = self._expr()
        self.expect("END")
        return case(whens, otherwise)

    def _aggregate_call(self) -> Expr:
        func = self.next().kind
        self.expect("LPAREN")
        if func == "COUNT" and self.accept("STAR"):
            self.expect("RPAREN")
            return self._register(agg.count_star())
        if func == "COUNT" and self.accept("DISTINCT"):
            inner = self._expr()
            self.expect("RPAREN")
            return self._register(agg.count_distinct(inner))
        inner = self._expr()
        self.expect("RPAREN")
        builder = {"SUM": agg.sum, "AVG": agg.avg, "MIN": agg.min,
                   "MAX": agg.max, "COUNT": agg.count}[func]
        return self._register(builder(inner))

    def _register(self, spec) -> Expr:
        name = f"__agg{self._agg_counter}"
        self._agg_counter += 1
        self._aggs[name] = spec
        return col(name)


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        return 31
    return (_dt.date(year, month + 1, 1) - _dt.timedelta(days=1)).day


def parse(db: Database, text: str) -> Q:
    """Parse a SQL SELECT into a plan (alias: :func:`sql`)."""
    parser = _Parser(db, tokenize(text))
    plan = parser.parse_query()
    trailing = parser.peek()
    if trailing.kind != "EOF":
        raise SqlSyntaxError(f"unexpected trailing input {trailing.value!r}")
    return plan


sql = parse
