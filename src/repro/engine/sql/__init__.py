"""SQL front-end for the columnar engine."""

from .lexer import SqlSyntaxError, Token, tokenize
from .parser import parse, sql

__all__ = ["SqlSyntaxError", "Token", "parse", "sql", "tokenize"]
