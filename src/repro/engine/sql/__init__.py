"""SQL front-end for the columnar engine.

Layered as lexer → parser (syntax tree) → planner (engine plan), with a
single error type (:class:`SqlError`) covering every failure mode: the
never-crash contract enforced by the fuzz suite.
"""

from .ast import render
from .errors import SqlError, SqlSyntaxError
from .lexer import Token, tokenize
from .parser import MAX_DEPTH, parse_statement
from .planner import parse, plan_statement, sql

parse_ast = parse_statement

__all__ = [
    "MAX_DEPTH", "SqlError", "SqlSyntaxError", "Token", "parse",
    "parse_ast", "parse_statement", "plan_statement", "render", "sql",
    "tokenize",
]
