"""Lower SQL syntax trees onto engine plans.

The planner maps every construct onto the operators the engine already
optimizes, so predicate pushdown, zone-map skipping, late
materialization, and tracing apply to SQL-originated plans unchanged:

* ``[NOT] IN (SELECT ...)`` and ``[NOT] EXISTS`` become semi/anti joins
  (uncorrelated ``EXISTS`` becomes a ``COUNT(*)`` scalar-subquery
  comparison instead, since there is no key to join on);
* correlated subqueries are decorrelated: the correlation's equality
  conjuncts (``inner_col = outer_col``) become join keys, and a
  correlated scalar aggregate becomes GROUP BY over the correlation
  keys followed by an inner join back to the outer query — the classic
  magic-set rewrite that TPC-H Q2/Q17/Q20 need;
* ``CASE``/``BETWEEN``/string functions lower to the vectorized
  expression kernels in :mod:`repro.engine.expr`.

Correlation is supported against the *immediately* enclosing query
block, expressed as equality conjuncts in the subquery's WHERE clause.
Anything else that references outer columns raises :class:`SqlError`.

Every failure path — unknown tables, out-of-scope columns, misplaced
aggregates, non-scalar subqueries — raises :class:`SqlError`; the
top-level :func:`parse` additionally wraps unexpected exceptions in an
``internal=True`` :class:`SqlError` as a last-resort guard so callers
only ever see one exception type.
"""

from __future__ import annotations

import datetime as _dt
from functools import reduce

from ..expr import Cmp, Expr, Literal, case, col, concat, lit, scalar
from ..optimizer import output_columns
from ..plan import Q, agg
from ..table import Database
from . import ast as A
from .errors import SqlError
from .parser import parse_statement

__all__ = ["parse", "sql", "plan_statement"]

_CMP_OPS = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_AGG_BUILDERS = {"SUM": agg.sum, "AVG": agg.avg, "MIN": agg.min,
                 "MAX": agg.max, "COUNT": agg.count}


def _conjuncts(node: A.Node | None) -> list[A.Node]:
    """Flatten a WHERE tree into top-level AND conjuncts (iteratively, so
    kilometer-long AND chains cannot exhaust the stack)."""
    if node is None:
        return []
    out: list[A.Node] = []
    stack = [node]
    while stack:
        n = stack.pop()
        if isinstance(n, A.Binary) and n.op == "AND":
            stack.append(n.right)
            stack.append(n.left)
        else:
            out.append(n)
    return out


def _corr_pair(c: A.Node, inner_scope: set, outer_scope: set) -> tuple[str, str] | None:
    """Recognize ``inner_col = outer_col`` correlation conjuncts.
    Returns ``(inner, outer)`` or None."""
    if not (isinstance(c, A.Binary) and c.op == "="
            and isinstance(c.left, A.Col) and isinstance(c.right, A.Col)):
        return None
    l, r = c.left.name, c.right.name
    l_in, r_in = l in inner_scope, r in inner_scope
    if l_in and not r_in and r in outer_scope:
        return (l, r)
    if r_in and not l_in and l in outer_scope:
        return (r, l)
    return None


def _apply_binop(op: str, left: Expr, right: Expr) -> Expr:
    if op == "AND":
        return left & right
    if op == "OR":
        return left | right
    if op in _CMP_OPS:
        return Cmp(_CMP_OPS[op], left, right)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right
    raise SqlError(f"unsupported operator {op!r}")


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        return 31
    return (_dt.date(year, month + 1, 1) - _dt.timedelta(days=1)).day


class _Shared:
    """Per-statement planning state: the catalog plus a counter that keeps
    decorrelated-subquery column names (``__subqN``) globally unique and
    deterministic in syntax-tree order."""

    def __init__(self, db: Database):
        self.db = db
        self._subq = 0

    def next_subq(self) -> int:
        n = self._subq
        self._subq += 1
        return n


def _plan_query(shared: _Shared, stmt: A.Node) -> Q:
    """Lower a full statement (SELECT or UNION chain) with no outer scope."""
    if not isinstance(stmt, A.UnionStmt):
        return _SelectLowering(shared).lower(stmt)
    # Walk the left-deep union spine iteratively.
    spine: list[A.UnionStmt] = []
    cur: A.Node = stmt
    while isinstance(cur, A.UnionStmt):
        spine.append(cur)
        cur = cur.left
    plan = _SelectLowering(shared).lower(cur)
    cols = list(output_columns(plan.node, shared.db))
    for union in reversed(spine):
        right = _plan_query(shared, union.right) if isinstance(union.right, A.UnionStmt) \
            else _SelectLowering(shared).lower(union.right)
        rcols = list(output_columns(right.node, shared.db))
        if rcols != cols:
            raise SqlError(
                f"UNION inputs must produce the same columns "
                f"({cols} vs {rcols})"
            )
        plan = plan.union_all(right)
        if not union.all:
            plan = plan.distinct()
    return plan


class _SelectLowering:
    """Lowers one SELECT block. Aggregate registration (``__aggN``) is
    per-block, matching one AggregateNode per block."""

    def __init__(self, shared: _Shared):
        self.shared = shared
        self.db = shared.db
        self._aggs: dict[str, object] = {}
        self._agg_counter = 0

    # -- entry points ---------------------------------------------------

    def lower(self, stmt: A.Node) -> Q:
        if not isinstance(stmt, A.SelectStmt):
            return _plan_query(self.shared, stmt)
        plan, scope, _corr = self._from_where(stmt, corr_scope=None)
        plan = self._project_and_aggregate(plan, scope, stmt)
        if stmt.order_by:
            out_cols = set(output_columns(plan.node, self.db))
            for name, _direction in stmt.order_by:
                if name not in out_cols:
                    raise SqlError(f"ORDER BY column {name!r} is not in scope")
            plan = plan.sort(*stmt.order_by)
        if stmt.limit is not None:
            plan = plan.limit(stmt.limit)
        return plan

    # -- FROM + WHERE ---------------------------------------------------

    def _from_where(
        self, stmt: A.SelectStmt, corr_scope: set | None
    ) -> tuple[Q, set, list[tuple[str, str]]]:
        """Plan FROM + joins, classify WHERE conjuncts, apply the pending
        subquery joins and residual filters. When ``corr_scope`` is given,
        equality conjuncts correlating with it are extracted and returned
        instead of planned."""
        plan = self._lower_from_item(stmt.from_item)
        for join in stmt.joins:
            plan = self._apply_join(plan, join)
        scope = set(output_columns(plan.node, self.db))

        pending: list[tuple[str, Q, list[tuple[str, str]]]] = []
        corr: list[tuple[str, str]] = []
        filters: list[Expr] = []
        for c in _conjuncts(stmt.where):
            if isinstance(c, A.Unary) and c.op == "NOT" and \
                    isinstance(c.operand, (A.InSelect, A.Exists)):
                inner = c.operand
                c = (A.InSelect(inner.operand, inner.query, not inner.negated)
                     if isinstance(inner, A.InSelect)
                     else A.Exists(inner.query, not inner.negated))
            if corr_scope is not None:
                pair = _corr_pair(c, scope, corr_scope)
                if pair is not None:
                    corr.append(pair)
                    continue
            if isinstance(c, A.InSelect):
                self._lower_in_select(c, scope, pending)
                continue
            if isinstance(c, A.Exists):
                self._lower_exists(c, scope, pending, filters)
                continue
            replacement = self._corr_scalar_filter(c, scope, pending)
            if replacement is not None:
                filters.append(replacement)
                continue
            filters.append(self._lower_expr(c, scope))
        for how, sub, on in pending:
            plan = plan.join(sub, on=on, how=how)
        if filters:
            plan = plan.filter(reduce(lambda a, b: a & b, filters))
        return plan, scope, corr

    def _lower_from_item(self, item: A.Node) -> Q:
        if isinstance(item, A.TableRef):
            try:
                return Q(self.db).scan(item.name)
            except KeyError:
                raise SqlError(f"unknown table {item.name!r}") from None
        return _plan_query(self.shared, item.query)

    def _apply_join(self, plan: Q, join: A.JoinClause) -> Q:
        if isinstance(join.item, A.TableRef):
            try:
                right = Q(self.db).scan(join.item.name)
            except KeyError:
                raise SqlError(f"unknown table {join.item.name!r}") from None
            right_cols = set(self.db.table(join.item.name).column_names)
        else:
            right = _plan_query(self.shared, join.item.query)
            right_cols = set(output_columns(right.node, self.db))
        left_cols = set(output_columns(plan.node, self.db))
        # Orient each pair: left side of the pair must come from the plan
        # built so far, the other from the newly joined table.
        oriented = []
        for a, b in join.on:
            if b in right_cols and a not in right_cols:
                pair = (a, b)
            elif a in right_cols and b not in right_cols:
                pair = (b, a)
            elif b in right_cols:
                pair = (a, b)
            else:
                raise SqlError(
                    f"join condition {a} = {b} does not reference the joined table"
                )
            if pair[0] not in left_cols:
                raise SqlError(f"join column {pair[0]!r} is not in scope")
            oriented.append(pair)
        return plan.join(right, on=oriented, how=join.how)

    # -- subquery conjuncts ---------------------------------------------

    def _try_correlate(self, query: A.Node, outer_scope: set):
        """Plan ``query``'s FROM+WHERE extracting correlation against
        ``outer_scope``. Returns ``(child, plan, inner_scope, corr)`` or
        None when the subquery is uncorrelated (or a UNION)."""
        if not isinstance(query, A.SelectStmt):
            return None
        child = _SelectLowering(self.shared)
        plan, inner_scope, corr = child._from_where(query, corr_scope=outer_scope)
        if not corr:
            return None
        return child, plan, inner_scope, corr

    @staticmethod
    def _reject_block_clauses(sub: A.SelectStmt, what: str) -> None:
        if sub.group_by or sub.having is not None or sub.order_by or sub.limit is not None:
            raise SqlError(
                f"correlated {what} subquery cannot use "
                f"GROUP BY/HAVING/ORDER BY/LIMIT"
            )

    def _lower_in_select(self, c: A.InSelect, scope: set, pending: list) -> None:
        if not isinstance(c.operand, A.Col):
            raise SqlError("IN (SELECT ...) requires a plain column on the left")
        left_name = c.operand.name
        if left_name not in scope:
            raise SqlError(f"column {left_name!r} is not in scope")
        how = "anti" if c.negated else "semi"
        prep = self._try_correlate(c.query, scope)
        if prep is None:
            subplan = _plan_query(self.shared, c.query)
            sub_cols = output_columns(subplan.node, self.db)
            if len(sub_cols) != 1:
                raise SqlError("IN subquery must produce exactly one column")
            pending.append(
                (how, subplan.project(__sub=col(sub_cols[0])), [(left_name, "__sub")])
            )
            return
        child, inner_plan, inner_scope, corr = prep
        sub = c.query
        self._reject_block_clauses(sub, "IN")
        if len(sub.items) != 1 or sub.items[0].expr is None:
            raise SqlError("IN subquery must produce exactly one column")
        value = child._lower_expr(sub.items[0].expr, inner_scope)
        n = self.shared.next_subq()
        vname = f"__subq{n}"
        proj = {vname: value}
        on = [(left_name, vname)]
        for i, (inner_col, outer_col) in enumerate(corr):
            key = f"{vname}_k{i}"
            proj[key] = col(inner_col)
            on.append((outer_col, key))
        pending.append((how, inner_plan.project(**proj), on))

    def _lower_exists(self, c: A.Exists, scope: set, pending: list,
                      filters: list) -> None:
        prep = self._try_correlate(c.query, scope)
        if prep is None:
            subplan = _plan_query(self.shared, c.query)
            counted = scalar(subplan.aggregate(by=[], __exists=agg.count_star()))
            filters.append((counted == lit(0)) if c.negated else (counted > lit(0)))
            return
        child, inner_plan, inner_scope, corr = prep
        if c.query.group_by or c.query.having is not None:
            raise SqlError("correlated EXISTS subquery cannot use GROUP BY/HAVING")
        n = self.shared.next_subq()
        proj = {}
        on = []
        for i, (inner_col, outer_col) in enumerate(corr):
            key = f"__subq{n}_k{i}"
            proj[key] = col(inner_col)
            on.append((outer_col, key))
        pending.append(("anti" if c.negated else "semi", inner_plan.project(**proj), on))

    def _corr_scalar_filter(self, c: A.Node, scope: set, pending: list) -> Expr | None:
        """Decorrelate ``expr CMP (SELECT agg ... WHERE inner = outer)``:
        aggregate the subquery grouped by its correlation keys, inner-join
        it back, and compare against the joined value column."""
        if not (isinstance(c, A.Binary) and c.op in _CMP_OPS):
            return None
        for sub_side, other_side in ((c.right, c.left), (c.left, c.right)):
            if not isinstance(sub_side, A.SubqueryExpr):
                continue
            prep = self._try_correlate(sub_side.query, scope)
            if prep is None:
                return None  # uncorrelated: ordinary expression lowering
            child, inner_plan, inner_scope, corr = prep
            sub = sub_side.query
            self._reject_block_clauses(sub, "scalar")
            if len(sub.items) != 1 or sub.items[0].expr is None:
                raise SqlError("scalar subquery must produce exactly one column")
            value = child._lower_expr(sub.items[0].expr, inner_scope, allow_aggs=True)
            if not child._aggs:
                raise SqlError("correlated scalar subquery must compute an aggregate")
            keys = [inner_col for inner_col, _ in corr]
            agg_plan = inner_plan.aggregate(by=keys, **child._aggs)
            n = self.shared.next_subq()
            vname = f"__subq{n}"
            proj = {}
            on = []
            for i, (inner_col, outer_col) in enumerate(corr):
                key = f"{vname}_k{i}"
                proj[key] = col(inner_col)
                on.append((outer_col, key))
            proj[vname] = value
            pending.append(("inner", agg_plan.project(**proj), on))
            other = self._lower_expr(other_side, scope)
            if sub_side is c.right:
                return Cmp(_CMP_OPS[c.op], other, col(vname))
            return Cmp(_CMP_OPS[c.op], col(vname), other)
        return None

    # -- projection + aggregation ---------------------------------------

    def _project_and_aggregate(self, plan: Q, scope: set, stmt: A.SelectStmt) -> Q:
        items = stmt.items
        group_names = list(stmt.group_by)
        has_star = any(item.expr is None for item in items)

        lowered: list[tuple[str, Expr, bool]] = []  # (alias, expr, uses_aggs)
        for item in items:
            if item.expr is None:
                continue
            before = len(self._aggs)
            e = self._lower_expr(item.expr, scope, allow_aggs=True)
            lowered.append((item.alias, e, len(self._aggs) > before))

        having_expr = None
        if stmt.having is not None:
            alias_map = {alias: e for alias, e, _uses in lowered}
            post_scope = set(group_names) | set(self._aggs)
            # HAVING sees post-aggregation columns, but aggregate *arguments*
            # inside it (e.g. HAVING SUM(l_quantity) > 300) resolve against
            # the pre-aggregation scope.
            having_expr = self._lower_expr(
                stmt.having, post_scope, allow_aggs=True, alias_map=alias_map,
                agg_scope=scope,
            )

        if not self._aggs and not group_names:
            if has_star:
                if len(items) > 1:
                    raise SqlError("SELECT * cannot mix with other items")
                result = plan
                out_names = scope
            else:
                result = plan.project(**{alias: e for alias, e, _uses in lowered})
                out_names = {alias for alias, _e, _uses in lowered}
            if having_expr is not None:
                # No aggregation: HAVING degenerates to a filter over the
                # projected output.
                bad = having_expr.references() - out_names
                if bad:
                    raise SqlError(f"HAVING column {sorted(bad)[0]!r} is not in scope")
                result = result.filter(having_expr)
            return result

        if has_star:
            raise SqlError("SELECT * cannot be combined with aggregation")

        # Group keys may name SELECT aliases of computed expressions; those
        # must be materialized before the aggregate.
        alias_lowered = {alias: (e, uses) for alias, e, uses in lowered}
        pre_project: dict[str, Expr] = {}
        for name in group_names:
            if name not in scope:
                if name not in alias_lowered:
                    raise SqlError(f"GROUP BY column {name!r} is not in scope")
                e, uses_aggs = alias_lowered[name]
                if uses_aggs:
                    raise SqlError(f"GROUP BY column {name!r} is an aggregate")
                pre_project[name] = e
        if pre_project:
            needed: set[str] = set()
            for spec in self._aggs.values():
                if spec.expr is not None:
                    needed |= spec.expr.references()
            for e in pre_project.values():
                needed |= e.references()
            keep = {name: col(name) for name in needed & scope}
            keep.update({g: col(g) for g in group_names if g in scope})
            keep.update(pre_project)
            plan = plan.project(**keep)

        plan = plan.aggregate(by=group_names, **self._aggs)
        post_cols = set(group_names) | set(self._aggs)
        if having_expr is not None:
            bad = having_expr.references() - post_cols
            if bad:
                raise SqlError(
                    f"HAVING column {sorted(bad)[0]!r} must appear in "
                    f"GROUP BY or inside an aggregate"
                )
            plan = plan.filter(having_expr)
        # Group-key select items were materialized before the aggregate
        # (possibly as computed expressions); after it they are plain
        # columns named by their alias.
        final: dict[str, Expr] = {}
        for alias, e, _uses in lowered:
            if alias in group_names:
                final[alias] = col(alias)
                continue
            bad = e.references() - post_cols
            if bad:
                raise SqlError(
                    f"column {sorted(bad)[0]!r} must appear in GROUP BY "
                    f"or inside an aggregate"
                )
            final[alias] = e
        return plan.project(**final)

    # -- expressions ----------------------------------------------------

    def _register_agg(self, spec) -> Expr:
        name = f"__agg{self._agg_counter}"
        self._agg_counter += 1
        self._aggs[name] = spec
        return col(name)

    def _lower_expr(
        self,
        node: A.Node,
        scope: set,
        *,
        allow_aggs: bool = False,
        alias_map: dict[str, Expr] | None = None,
        agg_scope: set | None = None,
    ) -> Expr:
        lower = lambda n: self._lower_expr(  # noqa: E731
            n, scope, allow_aggs=allow_aggs, alias_map=alias_map,
            agg_scope=agg_scope,
        )
        if isinstance(node, A.Binary):
            return self._lower_binary(node, scope, allow_aggs, alias_map, agg_scope)
        if isinstance(node, A.Col):
            name = node.name
            if name in scope:
                return col(name)
            if alias_map is not None and name in alias_map:
                return alias_map[name]
            raise SqlError(f"column {name!r} is not in scope")
        if isinstance(node, A.Number):
            return lit(float(node.text) if "." in node.text else int(node.text))
        if isinstance(node, A.String):
            return lit(node.value)
        if isinstance(node, A.DateLit):
            try:
                _dt.date.fromisoformat(node.value)
            except ValueError:
                raise SqlError(f"invalid DATE literal {node.value!r}") from None
            return lit(node.value)
        if isinstance(node, A.Interval):
            raise SqlError("INTERVAL is only valid in date arithmetic")
        if isinstance(node, A.Unary):
            if node.op == "NOT":
                return ~lower(node.operand)
            return lit(0) - lower(node.operand)
        if isinstance(node, A.Between):
            operand = lower(node.operand)
            return (operand >= lower(node.lo)) & (operand <= lower(node.hi))
        if isinstance(node, A.InList):
            result = lower(node.operand).isin(list(node.values))
            return ~result if node.negated else result
        if isinstance(node, A.InSelect):
            raise SqlError("IN (SELECT ...) is only supported in WHERE conjunctions")
        if isinstance(node, A.Exists):
            raise SqlError("EXISTS is only supported in WHERE conjunctions")
        if isinstance(node, A.LikePred):
            operand = lower(node.operand)
            return operand.not_like(node.pattern) if node.negated \
                else operand.like(node.pattern)
        if isinstance(node, A.IsNullPred):
            operand = lower(node.operand)
            return operand.is_not_null() if node.negated else operand.is_null()
        if isinstance(node, A.CaseWhen):
            whens = [(lower(cond), lower(value)) for cond, value in node.whens]
            otherwise = lower(node.otherwise) if node.otherwise is not None else lit(0.0)
            return case(whens, otherwise)
        if isinstance(node, A.Func):
            if node.name == "UPPER":
                return lower(node.args[0]).upper()
            if node.name == "LOWER":
                return lower(node.args[0]).lower()
            return concat(*[lower(arg) for arg in node.args])
        if isinstance(node, A.ExtractYearExpr):
            return lower(node.operand).year()
        if isinstance(node, A.SubstringFunc):
            return lower(node.operand).substring(node.start, node.length)
        if isinstance(node, A.Agg):
            if not allow_aggs:
                raise SqlError("aggregate functions are only allowed in SELECT and HAVING")
            if node.star:
                return self._register_agg(agg.count_star())
            arg = self._lower_expr(
                node.arg, scope if agg_scope is None else agg_scope,
                allow_aggs=False, alias_map=alias_map,
            )
            if node.distinct:
                return self._register_agg(agg.count_distinct(arg))
            return self._register_agg(_AGG_BUILDERS[node.func](arg))
        if isinstance(node, A.SubqueryExpr):
            subplan = _plan_query(self.shared, node.query)
            sub_cols = output_columns(subplan.node, self.db)
            if len(sub_cols) != 1:
                raise SqlError("scalar subquery must produce exactly one column")
            return scalar(subplan)
        raise SqlError(f"cannot lower expression {type(node).__name__}")

    def _lower_binary(self, node: A.Binary, scope: set, allow_aggs: bool,
                      alias_map: dict[str, Expr] | None,
                      agg_scope: set | None = None) -> Expr:
        # Walk the left spine iteratively: parser loops build left-deep
        # chains (a + b + c, a AND b AND ...), and recursing down them
        # frame-per-node would let a long flat chain exhaust the stack
        # even though its *nesting* depth is 1.
        spine: list[tuple[str, A.Node]] = []
        cur: A.Node = node
        while isinstance(cur, A.Binary):
            spine.append((cur.op, cur.right))
            cur = cur.left
        acc = self._lower_expr(cur, scope, allow_aggs=allow_aggs,
                               alias_map=alias_map, agg_scope=agg_scope)
        for op, right in reversed(spine):
            if isinstance(right, A.Interval):
                if op == "+":
                    acc = self._shift_date(acc, right, +1)
                elif op == "-":
                    acc = self._shift_date(acc, right, -1)
                else:
                    raise SqlError("INTERVAL is only valid in date arithmetic")
                continue
            rhs = self._lower_expr(right, scope, allow_aggs=allow_aggs,
                                   alias_map=alias_map, agg_scope=agg_scope)
            acc = _apply_binop(op, acc, rhs)
        return acc

    @staticmethod
    def _shift_date(base: Expr, interval: A.Interval, sign: int) -> Expr:
        """Fold ``DATE 'x' +/- INTERVAL 'n' unit`` into a date literal."""
        if not (isinstance(base, Literal) and isinstance(base.value, str)):
            raise SqlError("INTERVAL arithmetic needs a DATE literal")
        try:
            base_date = _dt.date.fromisoformat(base.value)
            years = months = days = 0
            if interval.unit == "DAY":
                days = interval.amount
            elif interval.unit == "MONTH":
                months = interval.amount
            else:
                years = interval.amount
            year = base_date.year + sign * years
            month = base_date.month + sign * months
            year += (month - 1) // 12
            month = (month - 1) % 12 + 1
            day = min(base_date.day, _days_in_month(year, month))
            moved = _dt.date(year, month, day) + _dt.timedelta(days=sign * days)
        except (ValueError, OverflowError) as exc:
            raise SqlError(f"invalid date arithmetic: {exc}") from None
        return lit(moved.isoformat())


def plan_statement(db: Database, stmt: A.Node) -> Q:
    """Lower an already-parsed syntax tree onto an engine plan."""
    return _plan_query(_Shared(db), stmt)


def parse(db: Database, text: str) -> Q:
    """Parse a SQL SELECT into a plan (alias: :func:`sql`).

    Never-crash contract: the only exception this raises for any input
    string is :class:`SqlError`. Unexpected internal failures are wrapped
    in an ``internal=True`` :class:`SqlError` as a last resort; the fuzz
    suite asserts that guard never fires.
    """
    try:
        return plan_statement(db, parse_statement(text))
    except SqlError:
        raise
    except RecursionError:
        raise SqlError("query nested too deeply", internal=True) from None
    except Exception as exc:
        raise SqlError(
            f"internal error while planning: {type(exc).__name__}: {exc}",
            internal=True,
        ) from exc


sql = parse
