"""SQL tokenizer for the engine's query dialect.

Hardened for the never-crash contract: every malformed input — an
unterminated string, a lone quote at end of input, an absurdly long
numeric literal, non-ASCII bytes, control characters — raises
:class:`SqlError` with the line and column where the problem starts.
No input makes the lexer raise ``IndexError``/``ValueError`` or scan
without making progress.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SqlError, SqlSyntaxError

__all__ = ["Token", "SqlError", "SqlSyntaxError", "tokenize", "KEYWORDS",
           "MAX_NUMBER_DIGITS", "MAX_SQL_LENGTH"]

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC",
    "DESC", "LIMIT", "AS", "AND", "OR", "NOT", "IN", "LIKE", "BETWEEN",
    "CASE", "WHEN", "THEN", "ELSE", "END", "JOIN", "INNER", "LEFT",
    "SEMI", "ANTI", "ON", "SUM", "AVG", "COUNT", "MIN", "MAX", "DISTINCT",
    "EXTRACT", "YEAR", "SUBSTRING", "FOR", "INTERVAL", "DAY", "MONTH",
    "DATE", "IS", "NULL", "EXISTS", "UNION", "ALL",
    "UPPER", "LOWER", "CONCAT",
}

_PUNCT = {
    "<=": "LE", ">=": "GE", "<>": "NE", "!=": "NE", "=": "EQ", "<": "LT",
    ">": "GT", "+": "PLUS", "-": "MINUS", "*": "STAR", "/": "SLASH",
    "(": "LPAREN", ")": "RPAREN", ",": "COMMA", ".": "DOT", ";": "SEMI_COLON",
}

# A numeric literal longer than this is rejected outright: Python itself
# refuses int() conversions past ~4300 digits, and no sane query needs a
# 40-digit constant.
MAX_NUMBER_DIGITS = 40

# Upper bound on statement size; far above any real query, low enough
# that a hostile megabyte of nested parens is refused in O(1).
MAX_SQL_LENGTH = 1_000_000


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is a keyword name, a punctuation name (``LE``, ``LPAREN``…),
    or one of ``IDENT`` / ``NUMBER`` / ``STRING`` / ``EOF``. ``position``
    is the character offset; ``line``/``column`` are 1-based.
    """

    kind: str
    value: str
    position: int
    line: int = 1
    column: int = 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}({self.value!r})"


class _Cursor:
    """Scanner state tracking line/column alongside the offset."""

    def __init__(self, text: str):
        self.text = text
        self.i = 0
        self.line = 1
        self.line_start = 0

    @property
    def column(self) -> int:
        return self.i - self.line_start + 1

    def error(self, message: str, *, at: tuple[int, int] | None = None) -> SqlError:
        line, column = at if at is not None else (self.line, self.column)
        return SqlError(message, line=line, column=column)

    def advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.i < len(self.text) and self.text[self.i] == "\n":
                self.line += 1
                self.line_start = self.i + 1
            self.i += 1


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`SqlError` on any bad input."""
    if not isinstance(text, str):
        raise SqlError(f"SQL statement must be a string, not {type(text).__name__}")
    if len(text) > MAX_SQL_LENGTH:
        raise SqlError(
            f"SQL statement too long ({len(text)} characters; "
            f"limit {MAX_SQL_LENGTH})"
        )
    cur = _Cursor(text)
    tokens: list[Token] = []
    n = len(text)
    while cur.i < n:
        i = cur.i
        ch = text[i]
        if ch.isspace() and ch in " \t\r\n\f\v":
            cur.advance()
            continue
        if ord(ch) > 127:
            raise cur.error(f"non-ASCII character {ch!r} in SQL input")
        if ch == "-" and text[i:i + 2] == "--":  # line comment
            nl = text.find("\n", i)
            cur.advance((n if nl < 0 else nl) - i)
            continue
        if ch == "'":
            start = (cur.line, cur.column)
            start_pos = i
            cur.advance()
            parts: list[str] = []
            while True:
                if cur.i >= n:
                    raise cur.error("unterminated string literal", at=start)
                c = text[cur.i]
                if ord(c) > 127:
                    raise cur.error(f"non-ASCII character {c!r} in string literal")
                if c == "'":
                    if text[cur.i + 1:cur.i + 2] == "'":  # escaped quote
                        parts.append("'")
                        cur.advance(2)
                        continue
                    cur.advance()
                    break
                parts.append(c)
                cur.advance()
            tokens.append(Token("STRING", "".join(parts), start_pos,
                                start[0], start[1]))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = (cur.line, cur.column)
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    seen_dot = True
                j += 1
            word = text[i:j]
            if len(word) > MAX_NUMBER_DIGITS:
                raise cur.error(
                    f"numeric literal too long ({len(word)} characters; "
                    f"limit {MAX_NUMBER_DIGITS})",
                    at=start,
                )
            tokens.append(Token("NUMBER", word, i, start[0], start[1]))
            cur.advance(j - i)
            continue
        if ch.isalpha() and ord(ch) < 128 or ch == "_":
            start = (cur.line, cur.column)
            j = i
            while j < n and (text[j].isalnum() and ord(text[j]) < 128 or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(upper, upper, i, start[0], start[1]))
            else:
                tokens.append(Token("IDENT", word, i, start[0], start[1]))
            cur.advance(j - i)
            continue
        two = text[i:i + 2]
        if two in _PUNCT:
            tokens.append(Token(_PUNCT[two], two, i, cur.line, cur.column))
            cur.advance(2)
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, i, cur.line, cur.column))
            cur.advance()
            continue
        raise cur.error(f"unexpected character {ch!r}")
    tokens.append(Token("EOF", "", n, cur.line, cur.column))
    return tokens
