"""SQL tokenizer for the engine's query subset."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "SqlSyntaxError", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC",
    "DESC", "LIMIT", "AS", "AND", "OR", "NOT", "IN", "LIKE", "BETWEEN",
    "CASE", "WHEN", "THEN", "ELSE", "END", "JOIN", "INNER", "LEFT",
    "SEMI", "ANTI", "ON", "SUM", "AVG", "COUNT", "MIN", "MAX", "DISTINCT",
    "EXTRACT", "YEAR", "SUBSTRING", "FOR", "INTERVAL", "DAY", "MONTH",
    "DATE", "IS", "NULL", "EXISTS", "UNION", "ALL",
}

_PUNCT = {
    "<=": "LE", ">=": "GE", "<>": "NE", "!=": "NE", "=": "EQ", "<": "LT",
    ">": "GT", "+": "PLUS", "-": "MINUS", "*": "STAR", "/": "SLASH",
    "(": "LPAREN", ")": "RPAREN", ",": "COMMA", ".": "DOT", ";": "SEMI_COLON",
}


class SqlSyntaxError(ValueError):
    """Raised on malformed SQL (lexing or parsing)."""


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is a keyword name, a punctuation name (``LE``, ``LPAREN``…),
    or one of ``IDENT`` / ``NUMBER`` / ``STRING`` / ``EOF``.
    """

    kind: str
    value: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}({self.value!r})"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i:i + 2] == "--":  # line comment
            nl = text.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if ch == "'":
            j = i + 1
            parts = []
            while True:
                if j >= n:
                    raise SqlSyntaxError(f"unterminated string at {i}")
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":  # escaped quote
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token("STRING", "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    seen_dot = True
                j += 1
            tokens.append(Token("NUMBER", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(upper, upper, i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = j
            continue
        two = text[i:i + 2]
        if two in _PUNCT:
            tokens.append(Token(_PUNCT[two], two, i))
            i += 2
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("EOF", "", n))
    return tokens
