"""Syntax tree for the SQL dialect, plus a renderer back to SQL text.

The parser (:mod:`repro.engine.sql.parser`) produces these nodes without
touching a catalog; the planner (:mod:`repro.engine.sql.planner`) lowers
them onto engine plans. Keeping the tree explicit buys two things: the
round-trip property test (``render`` → reparse → identical plan
fingerprint) and a planner that can classify WHERE conjuncts — semi/anti
joins for ``IN``/``EXISTS``, decorrelation for correlated scalar
subqueries — after parsing instead of during it.

``render`` emits conservative, fully-parenthesized SQL. It is not meant
to be pretty; it is meant to reparse to a semantically identical tree.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Node", "Col", "Number", "String", "DateLit", "Interval", "Binary",
    "Unary", "Between", "InList", "InSelect", "Exists", "LikePred",
    "IsNullPred", "CaseWhen", "Func", "ExtractYearExpr", "SubstringFunc",
    "Agg", "SubqueryExpr", "SelectItem", "TableRef", "DerivedTable",
    "JoinClause", "SelectStmt", "UnionStmt", "render",
]


class Node:
    """Base class for every syntax-tree node."""

    __slots__ = ()


# -- expressions -------------------------------------------------------


@dataclass(frozen=True)
class Col(Node):
    name: str


@dataclass(frozen=True)
class Number(Node):
    """Numeric literal; the source text is kept so rendering is exact."""

    text: str


@dataclass(frozen=True)
class String(Node):
    value: str


@dataclass(frozen=True)
class DateLit(Node):
    value: str


@dataclass(frozen=True)
class Interval(Node):
    amount: int
    unit: str  # DAY | MONTH | YEAR


@dataclass(frozen=True)
class Binary(Node):
    """op in: OR AND = <> < <= > >= + - * /"""

    op: str
    left: Node
    right: Node


@dataclass(frozen=True)
class Unary(Node):
    """op in: - NOT"""

    op: str
    operand: Node


@dataclass(frozen=True)
class Between(Node):
    operand: Node
    lo: Node
    hi: Node


@dataclass(frozen=True)
class InList(Node):
    """``x [NOT] IN (literal, ...)`` — values are plain Python values."""

    operand: Node
    values: tuple
    negated: bool


@dataclass(frozen=True)
class InSelect(Node):
    operand: Node
    query: Node  # SelectStmt | UnionStmt
    negated: bool


@dataclass(frozen=True)
class Exists(Node):
    query: Node
    negated: bool


@dataclass(frozen=True)
class LikePred(Node):
    operand: Node
    pattern: str
    negated: bool


@dataclass(frozen=True)
class IsNullPred(Node):
    operand: Node
    negated: bool


@dataclass(frozen=True)
class CaseWhen(Node):
    whens: tuple  # ((cond, value), ...)
    otherwise: Node | None


@dataclass(frozen=True)
class Func(Node):
    """UPPER / LOWER / CONCAT calls."""

    name: str
    args: tuple


@dataclass(frozen=True)
class ExtractYearExpr(Node):
    operand: Node


@dataclass(frozen=True)
class SubstringFunc(Node):
    operand: Node
    start: int
    length: int


@dataclass(frozen=True)
class Agg(Node):
    """SUM/AVG/MIN/MAX/COUNT call; ``arg`` is None for COUNT(*)."""

    func: str
    arg: Node | None
    distinct: bool = False
    star: bool = False


@dataclass(frozen=True)
class SubqueryExpr(Node):
    """``(SELECT ...)`` used as a scalar value."""

    query: Node


# -- statements --------------------------------------------------------


@dataclass(frozen=True)
class SelectItem(Node):
    """One SELECT-list entry; ``expr is None`` means ``*`` (alias None)."""

    expr: Node | None
    alias: str | None


@dataclass(frozen=True)
class TableRef(Node):
    name: str
    alias: str | None = None


@dataclass(frozen=True)
class DerivedTable(Node):
    query: Node
    alias: str | None = None


@dataclass(frozen=True)
class JoinClause(Node):
    how: str  # inner | left | semi | anti
    item: Node  # TableRef | DerivedTable
    on: tuple  # ((name, name), ...)


@dataclass(frozen=True)
class SelectStmt(Node):
    items: tuple
    from_item: Node
    joins: tuple = ()
    where: Node | None = None
    group_by: tuple = ()
    having: Node | None = None
    order_by: tuple = ()  # ((name, "asc"|"desc"), ...)
    limit: int | None = None


@dataclass(frozen=True)
class UnionStmt(Node):
    left: Node
    right: Node
    all: bool


# -- rendering ---------------------------------------------------------


def _quote(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


_JOIN_SQL = {"inner": "JOIN", "left": "LEFT JOIN", "semi": "SEMI JOIN",
             "anti": "ANTI JOIN"}


def render(node: Node) -> str:
    """Render a syntax tree back to SQL text in the engine's dialect."""
    if isinstance(node, UnionStmt):
        keyword = "UNION ALL" if node.all else "UNION"
        return f"{render(node.left)} {keyword} {render(node.right)}"
    if isinstance(node, SelectStmt):
        return _render_select(node)
    return _render_expr(node)


def _render_select(stmt: SelectStmt) -> str:
    parts = ["SELECT", ", ".join(_render_item(item) for item in stmt.items)]
    parts.append("FROM")
    parts.append(_render_from(stmt.from_item))
    for join in stmt.joins:
        on = " AND ".join(f"{a} = {b}" for a, b in join.on)
        parts.append(f"{_JOIN_SQL[join.how]} {_render_from(join.item)} ON {on}")
    if stmt.where is not None:
        parts.append(f"WHERE {_render_expr(stmt.where)}")
    if stmt.group_by:
        parts.append("GROUP BY " + ", ".join(stmt.group_by))
    if stmt.having is not None:
        parts.append(f"HAVING {_render_expr(stmt.having)}")
    if stmt.order_by:
        keys = ", ".join(f"{name} {direction.upper()}" for name, direction in stmt.order_by)
        parts.append(f"ORDER BY {keys}")
    if stmt.limit is not None:
        parts.append(f"LIMIT {stmt.limit}")
    return " ".join(parts)


def _render_item(item: SelectItem) -> str:
    if item.expr is None:
        return "*"
    text = _render_expr(item.expr)
    if item.alias is not None:
        return f"{text} AS {item.alias}"
    return text


def _render_from(item: Node) -> str:
    if isinstance(item, TableRef):
        return item.name if item.alias is None else f"{item.name} AS {item.alias}"
    assert isinstance(item, DerivedTable)
    body = f"({render(item.query)})"
    return body if item.alias is None else f"{body} AS {item.alias}"


def _render_literal(value) -> str:
    if isinstance(value, str):
        return _quote(value)
    return repr(value)


def _render_expr(node: Node) -> str:
    if isinstance(node, Col):
        return node.name
    if isinstance(node, Number):
        return node.text
    if isinstance(node, String):
        return _quote(node.value)
    if isinstance(node, DateLit):
        return f"DATE {_quote(node.value)}"
    if isinstance(node, Interval):
        return f"INTERVAL {_quote(str(node.amount))} {node.unit}"
    if isinstance(node, Binary):
        op = {"AND": "AND", "OR": "OR"}.get(node.op, node.op)
        return f"({_render_expr(node.left)} {op} {_render_expr(node.right)})"
    if isinstance(node, Unary):
        if node.op == "NOT":
            return f"(NOT {_render_expr(node.operand)})"
        return f"(- {_render_expr(node.operand)})"
    if isinstance(node, Between):
        return (f"({_render_expr(node.operand)} BETWEEN "
                f"{_render_expr(node.lo)} AND {_render_expr(node.hi)})")
    if isinstance(node, InList):
        values = ", ".join(_render_literal(v) for v in node.values)
        word = "NOT IN" if node.negated else "IN"
        return f"({_render_expr(node.operand)} {word} ({values}))"
    if isinstance(node, InSelect):
        word = "NOT IN" if node.negated else "IN"
        return f"({_render_expr(node.operand)} {word} ({render(node.query)}))"
    if isinstance(node, Exists):
        word = "NOT EXISTS" if node.negated else "EXISTS"
        return f"{word} ({render(node.query)})"
    if isinstance(node, LikePred):
        word = "NOT LIKE" if node.negated else "LIKE"
        return f"({_render_expr(node.operand)} {word} {_quote(node.pattern)})"
    if isinstance(node, IsNullPred):
        word = "IS NOT NULL" if node.negated else "IS NULL"
        return f"({_render_expr(node.operand)} {word})"
    if isinstance(node, CaseWhen):
        parts = ["CASE"]
        for cond, value in node.whens:
            parts.append(f"WHEN {_render_expr(cond)} THEN {_render_expr(value)}")
        if node.otherwise is not None:
            parts.append(f"ELSE {_render_expr(node.otherwise)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(node, Func):
        args = ", ".join(_render_expr(a) for a in node.args)
        return f"{node.name}({args})"
    if isinstance(node, ExtractYearExpr):
        return f"EXTRACT(YEAR FROM {_render_expr(node.operand)})"
    if isinstance(node, SubstringFunc):
        return (f"SUBSTRING({_render_expr(node.operand)} "
                f"FROM {node.start} FOR {node.length})")
    if isinstance(node, Agg):
        if node.star:
            return "COUNT(*)"
        inner = _render_expr(node.arg)
        if node.distinct:
            return f"{node.func}(DISTINCT {inner})"
        return f"{node.func}({inner})"
    if isinstance(node, SubqueryExpr):
        return f"({render(node.query)})"
    raise TypeError(f"cannot render node {type(node).__name__}")
