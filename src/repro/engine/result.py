"""Query results: real rows plus the work profile that produced them."""

from __future__ import annotations

from .frame import Frame
from .profile import WorkProfile

__all__ = ["Result"]


class Result:
    """Final output of executing a plan.

    Attributes:
        frame: the materialized result columns.
        profile: hardware-independent work profile of the execution,
            consumed by :mod:`repro.hardware` to predict per-platform
            runtimes.
        wall_seconds: measured wall-clock of this (numpy-engine)
            execution on the host — useful for engine regression
            tracking, *not* a paper artifact (those come from the
            hardware model).
        cached: whether this result was served from a
            :class:`~repro.engine.cache.ResultCache` hit instead of a
            fresh execution.
    """

    def __init__(
        self,
        frame: Frame,
        profile: WorkProfile,
        wall_seconds: float = 0.0,
        cached: bool = False,
    ):
        self.frame = frame
        self.profile = profile
        self.wall_seconds = wall_seconds
        self.cached = cached

    @property
    def column_names(self) -> list[str]:
        return list(self.frame.columns)

    def column(self, name: str) -> list:
        """Python-native values of one output column."""
        return self.frame.column(name).to_list()

    @property
    def rows(self) -> list[tuple]:
        """All rows as tuples of Python-native values."""
        lists = [col.to_list() for col in self.frame.columns.values()]
        return list(zip(*lists)) if lists else []

    def to_dicts(self) -> list[dict]:
        names = self.column_names
        return [dict(zip(names, row)) for row in self.rows]

    def scalar(self):
        """The single value of a 1x1 result (global aggregates)."""
        if self.frame.nrows != 1 or len(self.frame.columns) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got {self.frame.nrows}x{len(self.frame.columns)}"
            )
        return self.rows[0][0]

    def __len__(self) -> int:
        return self.frame.nrows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Result(rows={self.frame.nrows}, cols={self.column_names})"
