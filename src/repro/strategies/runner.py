"""Run the Fig. 4 matrix: 8 queries x 3 strategies x platforms,
single-threaded."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.profiler import TPCHProfiler
from repro.hardware import PLATFORMS, PerformanceModel

from .accessaware import ACCESS_AWARE
from .base import COMPILED_CONSTANTS, STRATEGY_QUERIES, Strategy
from .datacentric import DATA_CENTRIC
from .hybrid import HYBRID

__all__ = ["ALL_STRATEGIES", "StrategyRun", "run_matrix", "FIG4_PLATFORMS"]

ALL_STRATEGIES: tuple[Strategy, ...] = (DATA_CENTRIC, HYBRID, ACCESS_AWARE)

# The paper's Fig. 4 shows op-e5, op-gold, and the Pi (cloud machines
# "exhibited similar trends").
FIG4_PLATFORMS = ("op-e5", "op-gold", "pi3b+")


@dataclass(frozen=True)
class StrategyRun:
    platform: str
    strategy: str
    query: int
    seconds: float


def run_matrix(
    profiler: TPCHProfiler | None = None,
    platforms: tuple[str, ...] = FIG4_PLATFORMS,
    queries: tuple[int, ...] = STRATEGY_QUERIES,
    target_sf: float = 1.0,
) -> list[StrategyRun]:
    """Predicted single-threaded runtimes for every (platform, strategy,
    query) cell of Fig. 4. Hand-coded kernels carry no DBMS platform
    factor, so the model runs with factors disabled."""
    profiler = profiler or TPCHProfiler()
    model = PerformanceModel(COMPILED_CONSTANTS, platform_factors={})
    runs = []
    for number in queries:
        base_profile = profiler.profile(number, target_sf).profile
        for strategy in ALL_STRATEGIES:
            shaped = strategy.transform(base_profile)
            for key in platforms:
                seconds = model.predict(shaped, PLATFORMS[key], threads=1)
                runs.append(StrategyRun(key, strategy.name, number, seconds))
    return runs
