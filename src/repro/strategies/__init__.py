"""Execution-strategy study (Fig. 4): data-centric, hybrid, access-aware."""

from .accessaware import ACCESS_AWARE
from .base import COMPILED_CONSTANTS, STRATEGY_QUERIES, Strategy
from .datacentric import DATA_CENTRIC
from .hybrid import HYBRID
from .runner import ALL_STRATEGIES, FIG4_PLATFORMS, StrategyRun, run_matrix

__all__ = [
    "ACCESS_AWARE", "ALL_STRATEGIES", "COMPILED_CONSTANTS", "DATA_CENTRIC",
    "FIG4_PLATFORMS", "HYBRID", "STRATEGY_QUERIES", "Strategy",
    "StrategyRun", "run_matrix",
]
