"""Access-aware (predicate pullup) execution — always the fastest
paradigm in the paper's Fig. 4, though its advantage narrows on the
bandwidth-starved Pi."""

from .base import Strategy

__all__ = ["ACCESS_AWARE"]

ACCESS_AWARE = Strategy(
    name="access-aware",
    # Tight column-at-a-time loops: branch-free, SIMD-friendly.
    ops_factor=1.00,
    # Predicate pullup re-touches columns it could have skipped, but its
    # perfectly sequential passes use every byte of each cache line, so
    # *effective* traffic is still the lowest — the reason the paper found
    # it fastest even on the bandwidth-starved Pi (where its edge is
    # smallest, since the seq gap is far smaller than the compute gap).
    seq_factor=0.92,
    # Consistent, prefetchable access patterns.
    rand_factor=0.50,
    description="Predicate pullup: access-ordered passes, consistent patterns",
)
