"""Query execution strategies (Fig. 4).

The paper hand-codes the 8 chokepoint queries in C under three execution
paradigms from Crotty et al.'s "Getting Swole" (ICDE 2020):

* **data-centric** — HyPer-style fused tuple-at-a-time pipelines: no
  intermediate materialization, but per-tuple control flow and
  data-dependent access patterns;
* **hybrid** — relaxed operator fusion (Menon et al.): vectors staged at
  pipeline breakers;
* **access-aware** — predicate pullup: extra memory accesses traded for
  consistent, prefetch/SIMD-friendly access patterns.

All three compute identical results; they differ in how the same logical
work maps onto hardware. We model each strategy as a transformation of
the engine's work profile (scalar-op, sequential-byte, and random-access
multipliers per the paradigm's access behaviour) evaluated single-threaded
with compiled-code constants (no DBMS dispatch), matching the paper's
single-threaded hand-coded C setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import OperatorWork, WorkProfile
from repro.hardware import CalibrationConstants

__all__ = ["Strategy", "COMPILED_CONSTANTS", "STRATEGY_QUERIES"]

# The 8 queries of Fig. 4 (same chokepoint subset as SF 10).
STRATEGY_QUERIES = (1, 3, 4, 5, 6, 13, 14, 19)

# Hand-written compiled C: a few cycles per logical op, no interpreter
# dispatch, and no DBMS system overhead ("the median performance gap is
# now significantly reduced, due to the elimination of system-level
# overheads").
COMPILED_CONSTANTS = CalibrationConstants(
    cycles_per_op=6.0,
    bytes_factor=1.2,
    rand_latency_factor=0.3,
    dispatch_ops=2e4,
    serial_fraction=0.0,
    mem_serial_fraction=0.0,
)


@dataclass(frozen=True)
class Strategy:
    """One execution paradigm as a work-profile transformation.

    Attributes:
        name: paradigm name.
        ops_factor: scalar-op multiplier (per-tuple control flow and
            branch misprediction overhead).
        seq_factor: sequential-traffic multiplier (materialization vs.
            fusion; access-aware re-reads columns in extra passes).
        rand_factor: random-access multiplier (access-pattern
            consistency; the paradigm's defining knob).
    """

    name: str
    ops_factor: float
    seq_factor: float
    rand_factor: float
    description: str = ""

    def transform(self, profile: WorkProfile) -> WorkProfile:
        """Map an engine work profile onto this paradigm's hardware
        demand."""
        out = []
        for op in profile.operators:
            out.append(
                OperatorWork(
                    operator=op.operator,
                    seq_bytes=op.seq_bytes * self.seq_factor,
                    rand_accesses=op.rand_accesses * self.rand_factor,
                    ops=op.ops * self.ops_factor,
                    tuples_in=op.tuples_in,
                    tuples_out=op.tuples_out,
                    out_bytes=op.out_bytes * self.seq_factor,
                )
            )
        return WorkProfile(out)
