"""Hybrid (relaxed operator fusion) execution — between the other two
paradigms, as in the paper's Fig. 4."""

from .base import Strategy

__all__ = ["HYBRID"]

HYBRID = Strategy(
    name="hybrid",
    # Vectorized stages amortize control flow over small batches.
    ops_factor=1.15,
    # Stages materialize at pipeline breakers only; vector-at-a-time
    # access recovers most cache-line utilization.
    seq_factor=0.95,
    # Batch-at-a-time access restores some locality.
    rand_factor=1.00,
    description="Relaxed operator fusion: vectors staged at pipeline breakers",
)
