"""Data-centric (fused tuple-at-a-time) execution — the slowest paradigm
in both the original study and the paper's Fig. 4."""

from .base import Strategy

__all__ = ["DATA_CENTRIC"]

DATA_CENTRIC = Strategy(
    name="data-centric",
    # Per-tuple control flow: every tuple walks the whole pipeline, with
    # data-dependent branches at each operator boundary.
    ops_factor=1.50,
    # Effective memory traffic: fusion avoids materialization, but
    # tuple-at-a-time interleaving of many base columns wastes cache-line
    # bandwidth, so effective traffic is highest of the three.
    seq_factor=1.00,
    # Data-dependent per-tuple accesses defeat the prefetcher.
    rand_factor=1.40,
    description="HyPer-style fused pipelines, tuple at a time",
)
