"""Process-wide metrics registry: counters, gauges, histograms.

Subsystems with cross-query state — the result cache, the join-key
cache, zone-map probing, the fault injector — report here instead of
growing ad-hoc instance attributes. The registry is get-or-create by
name, so module-level code can hold a counter reference at import time
and pay one lock-protected add on the hot path.

``snapshot()`` is deterministic: metrics come back in sorted-name order
with plain-JSON values, which is what golden-based assertions need.
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HitMissStats",
    "MetricsRegistry",
    "metrics",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def describe(self):
        return self.value


class Gauge:
    """A point-in-time value (cache residency, entry counts)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def describe(self):
        return self.value


# Default histogram bucket upper bounds: seconds-flavored log scale that
# also serves counts reasonably; callers can pass their own.
_DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class Histogram:
    """Fixed-bucket histogram with running count/sum/min/max."""

    __slots__ = ("name", "_lock", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, buckets: tuple | None = None):
        self.name = name
        self._lock = threading.Lock()
        self.bounds = tuple(buckets) if buckets is not None else _DEFAULT_BUCKETS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram buckets must be sorted ascending")
        self.counts = [0] * (len(self.bounds) + 1)  # last bucket = +inf
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        with self._lock:
            index = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    index = i
                    break
            self.counts[index] += 1
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.bounds) + 1)
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None

    def describe(self) -> dict:
        with self._lock:
            return {
                "buckets": list(self.counts),
                "count": self.count,
                "max": self.max,
                "min": self.min,
                "sum": self.total,
            }


class MetricsRegistry:
    """Named metric store with get-or-create semantics."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, cls, *args):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, buckets: tuple | None = None) -> Histogram:
        return self._get_or_create(name, Histogram, buckets)

    def get(self, name: str):
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> dict:
        """All metric values, sorted by name (deterministic)."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.describe() for name, metric in items}

    def reset(self) -> None:
        """Zero every metric in place (references stay valid)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()


# The process-wide registry engine subsystems report into.
metrics = MetricsRegistry()


class HitMissStats:
    """Shared hit/miss bookkeeping for the engine's caches.

    Keeps instance-local counts (tests assert on a fresh cache's own
    hits/misses) while mirroring every event into process-wide registry
    counters under ``<prefix>.hits`` / ``<prefix>.misses``. Callers
    already serialize hit/miss calls under their own cache lock, so the
    local ints need no lock of their own.
    """

    __slots__ = ("hits", "misses", "_global_hits", "_global_misses")

    def __init__(self, prefix: str, registry: MetricsRegistry | None = None):
        registry = registry if registry is not None else metrics
        self.hits = 0
        self.misses = 0
        self._global_hits = registry.counter(prefix + ".hits")
        self._global_misses = registry.counter(prefix + ".misses")

    def hit(self) -> None:
        self.hits += 1
        self._global_hits.inc()

    def miss(self) -> None:
        self.misses += 1
        self._global_misses.inc()

    def reset_local(self) -> None:
        """Reset this instance's counts; the registry counters are
        cumulative across the process and stay put."""
        self.hits = 0
        self.misses = 0
