"""Structured trace spans for the query engine and cluster runtime.

The paper's argument is built from *attribution* — which operator, which
subsystem, which resource — not end-to-end wall clocks. A
:class:`Tracer` records a nested tree of spans
(``query → pipeline → operator → morsel``) with perf-counter timestamps
and, for operator spans, a snapshot of the
:class:`~repro.engine.profile.OperatorWork` counters the performance
model consumes. Spans therefore reconcile *exactly* against the
WorkProfile: the tracer holds a reference to the very ``OperatorWork``
object an operator charged into and copies its counters when the query
finishes (not when the span closes — merge phases, morsel pre-skip
accounting, and the result-boundary gather all charge an operator after
its span has ended).

Tracing is opt-in. The default is the shared :data:`NULL_TRACER`, whose
``enabled`` flag is the single attribute check the hot path pays; every
mutation on a :class:`_NullSpan` is a no-op, so instrumented code never
branches on "am I traced" beyond that flag.

Thread-safety: span creation (parenting / root registration) takes the
tracer's lock; everything else mutates only the span itself, which is
owned by exactly one thread until it closes (morsel spans live on their
worker thread, shard spans on their pool thread).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "OperatorSpanScope",
    "Span",
    "Tracer",
    "WORK_FIELDS",
    "iter_spans",
    "note",
]

# The OperatorWork counter fields snapshotted into operator-span attrs
# when a trace finalizes. Order matches repro.engine.profile.OperatorWork.
WORK_FIELDS = (
    "seq_bytes",
    "rand_accesses",
    "ops",
    "tuples_in",
    "tuples_out",
    "out_bytes",
    "skipped_bytes",
    "zone_probes",
    "blocks_skipped",
    "blocks_scanned",
    "gather_bytes",
    "saved_bytes",
    "decoded_bytes",
    "encoded_eval_rows",
    "runs_touched",
)


class Span:
    """One traced interval: a kind ("query", "pipeline", "operator",
    "morsel", "shard"), perf-counter bounds, free-form attrs, point
    events, and child spans.

    ``work`` optionally references the OperatorWork this span observes;
    :meth:`Tracer.finalize` snapshots its counters into ``attrs`` and
    drops the reference.
    """

    __slots__ = (
        "kind", "name", "start_s", "end_s", "thread",
        "attrs", "events", "children", "work",
    )

    def __init__(self, kind: str, name: str, start_s: float, thread: int):
        self.kind = kind
        self.name = name
        self.start_s = start_s
        self.end_s: float | None = None
        self.thread = thread
        self.attrs: dict = {}
        self.events: list[dict] = []
        self.children: list["Span"] = []
        self.work = None

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else self.start_s
        return end - self.start_s

    def annotate(self, **attrs) -> None:
        self.attrs.update(attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a point-in-time event inside this span."""
        self.events.append(
            {"name": name, "t_s": time.perf_counter(), "attrs": attrs}
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.kind}:{self.name}, {self.duration_s * 1e3:.3f} ms)"


def iter_spans(root: Span):
    """Depth-first iteration over a span tree (pre-order, so operator
    spans come out in profile order)."""
    stack = [root]
    while stack:
        span = stack.pop()
        yield span
        stack.extend(reversed(span.children))


class Tracer:
    """Collects span trees. One tracer may record many queries; each
    query execution contributes one root span to ``roots``."""

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self.roots: list[Span] = []

    def start(
        self,
        kind: str,
        name: str,
        parent: Span | None = None,
        start_s: float | None = None,
        work=None,
    ) -> Span:
        span = Span(
            kind,
            name,
            start_s if start_s is not None else time.perf_counter(),
            threading.get_ident(),
        )
        span.work = work
        with self._lock:
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)
        return span

    def finish(self, span: Span, end_s: float | None = None) -> None:
        if span.end_s is None:
            span.end_s = end_s if end_s is not None else time.perf_counter()

    @contextmanager
    def span(self, kind: str, name: str, parent: Span | None = None):
        span = self.start(kind, name, parent=parent)
        try:
            yield span
        finally:
            self.finish(span)

    def finalize(self, root: Span) -> None:
        """Close any still-open spans under ``root`` and snapshot the
        OperatorWork counters of operator spans into their attrs.

        Idempotent: a snapshotted span drops its work reference, so a
        second finalize (e.g. a driver finalizing a tree an inner
        executor already finalized) is a cheap no-op walk.
        """
        end = time.perf_counter()
        for span in iter_spans(root):
            if span.end_s is None:
                span.end_s = end
            work = span.work
            if work is not None:
                span.work = None
                for field in WORK_FIELDS:
                    value = getattr(work, field)
                    if value:
                        span.attrs[field] = value

    def reset(self) -> None:
        with self._lock:
            self.roots = []


class _NullSpan:
    """Inert span: every read is empty, every mutation a no-op."""

    __slots__ = ()

    kind = "null"
    name = ""
    start_s = 0.0
    end_s = 0.0
    thread = 0
    work = None
    events = ()
    children = ()
    duration_s = 0.0

    @property
    def attrs(self) -> dict:
        return {}

    def annotate(self, **attrs) -> None:
        pass

    def event(self, name: str, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: instrumented code checks ``enabled`` once
    and otherwise costs nothing. All methods return inert singletons."""

    enabled = False
    roots: tuple = ()

    def start(self, kind, name, parent=None, start_s=None, work=None) -> _NullSpan:
        return _NULL_SPAN

    def finish(self, span, end_s=None) -> None:
        pass

    def span(self, kind, name, parent=None) -> _NullSpan:
        return _NULL_SPAN  # usable as a context manager

    def finalize(self, root=None) -> None:
        pass

    def reset(self) -> None:
        pass


NULL_TRACER = NullTracer()


def note(ctx, **attrs) -> None:
    """Annotate the operator span currently open on an execution context.

    Operators call this with whatever per-operator detail is worth
    seeing in a timeline (selectivity, group counts, run shapes). It is
    a no-op for contexts without span machinery — including the minimal
    contexts unit tests build around a bare WorkProfile — so operator
    code needs no tracing guard.
    """
    span = getattr(ctx, "op_span", None)
    if span is not None:
        span.attrs.update(attrs)


class OperatorSpanScope:
    """Tracks the at-most-one open operator span of an execution context.

    ``begin`` closes the previous operator span (operators within one
    context are sequential siblings) and opens a new one referencing the
    OperatorWork it charges into. ``extra`` attrs mark morsel-fragment
    operator spans so reconciliation can tell fragments (whose work is
    coalesced away by the profile merge) from profile-resident spans.
    """

    __slots__ = ("_tracer", "parent", "open_span", "_extra")

    def __init__(self, tracer: Tracer, parent: Span | None, **extra):
        self._tracer = tracer
        self.parent = parent
        self.open_span: Span | None = None
        self._extra = extra

    def begin(self, name: str, work) -> Span:
        if self.open_span is not None:
            self._tracer.finish(self.open_span)
        span = self._tracer.start("operator", name, parent=self.parent, work=work)
        if self._extra:
            span.attrs.update(self._extra)
        self.open_span = span
        return span

    def close(self) -> None:
        if self.open_span is not None:
            self._tracer.finish(self.open_span)
            self.open_span = None
