"""Observability: structured trace spans, metrics, exporters.

See :mod:`repro.obs.trace` for the span model, :mod:`repro.obs.metrics`
for the process-wide registry, and :mod:`repro.obs.export` for the JSON
/ Chrome trace formats.
"""

from .export import (
    chrome_trace_events,
    load_trace_schema,
    render_tree,
    span_to_dict,
    trace_to_dict,
    validate_trace,
    write_chrome_trace,
    write_json_trace,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    HitMissStats,
    MetricsRegistry,
    metrics,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    OperatorSpanScope,
    Span,
    Tracer,
    WORK_FIELDS,
    iter_spans,
    note,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HitMissStats",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "OperatorSpanScope",
    "Span",
    "Tracer",
    "WORK_FIELDS",
    "chrome_trace_events",
    "iter_spans",
    "load_trace_schema",
    "metrics",
    "note",
    "render_tree",
    "span_to_dict",
    "trace_to_dict",
    "validate_trace",
    "write_chrome_trace",
    "write_json_trace",
]
