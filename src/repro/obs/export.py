"""Trace exporters: JSON document, Chrome trace-event format, text tree.

The JSON document format is versioned and validated by the checked-in
schema (``trace_schema.json``) — CI round-trips a Q1/Q6 trace through
:func:`validate_trace` on every push. The Chrome format loads directly
into ``chrome://tracing`` / https://ui.perfetto.dev as complete ("X")
events, one timeline row per thread, with span point-events as instant
("i") markers.

The schema validator is deliberately minimal (type / required /
properties / items / enum / ``$ref`` into ``$defs``) so the repo needs
no jsonschema dependency.
"""

from __future__ import annotations

import json
from pathlib import Path

from .trace import Span, iter_spans

__all__ = [
    "chrome_trace_events",
    "load_trace_schema",
    "render_tree",
    "span_to_dict",
    "trace_to_dict",
    "validate_trace",
    "write_chrome_trace",
    "write_json_trace",
]

TRACE_FORMAT_VERSION = 1

_SCHEMA_PATH = Path(__file__).with_name("trace_schema.json")


def _jsonable(value):
    """Coerce attr values to plain JSON scalars (numpy scalars included)."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


def span_to_dict(span: Span) -> dict:
    return {
        "kind": span.kind,
        "name": span.name,
        "start_s": float(span.start_s),
        "end_s": float(span.end_s if span.end_s is not None else span.start_s),
        "thread": int(span.thread),
        "attrs": {str(k): _jsonable(v) for k, v in span.attrs.items()},
        "events": [
            {
                "name": e["name"],
                "t_s": float(e["t_s"]),
                "attrs": {str(k): _jsonable(v) for k, v in e["attrs"].items()},
            }
            for e in span.events
        ],
        "children": [span_to_dict(child) for child in span.children],
    }


def trace_to_dict(tracer, meta: dict | None = None) -> dict:
    """The versioned JSON trace document for a tracer's recorded roots."""
    return {
        "version": TRACE_FORMAT_VERSION,
        "generator": "repro.obs",
        "meta": {str(k): _jsonable(v) for k, v in (meta or {}).items()},
        "spans": [span_to_dict(root) for root in tracer.roots],
    }


def write_json_trace(path, tracer, meta: dict | None = None) -> None:
    Path(path).write_text(json.dumps(trace_to_dict(tracer, meta), indent=2) + "\n")


# -- Chrome trace-event format ------------------------------------------


def chrome_trace_events(tracer) -> list[dict]:
    """Spans as Chrome trace events (ts/dur in microseconds, rebased so
    the earliest span starts at 0; thread ids remapped to small ints in
    first-seen order so the timeline rows are stable)."""
    spans = [s for root in tracer.roots for s in iter_spans(root)]
    if not spans:
        return []
    t0 = min(s.start_s for s in spans)
    tids: dict[int, int] = {}
    events: list[dict] = []
    for span in spans:
        tid = tids.setdefault(span.thread, len(tids))
        end_s = span.end_s if span.end_s is not None else span.start_s
        events.append({
            "ph": "X",
            "name": f"{span.kind}:{span.name}" if span.kind != "operator" else span.name,
            "cat": span.kind,
            "ts": (span.start_s - t0) * 1e6,
            "dur": max(0.0, (end_s - span.start_s) * 1e6),
            "pid": 0,
            "tid": tid,
            "args": {str(k): _jsonable(v) for k, v in span.attrs.items()},
        })
        for e in span.events:
            events.append({
                "ph": "i",
                "name": e["name"],
                "cat": span.kind,
                "ts": (e["t_s"] - t0) * 1e6,
                "pid": 0,
                "tid": tid,
                "s": "t",
                "args": {str(k): _jsonable(v) for k, v in e["attrs"].items()},
            })
    return events


def write_chrome_trace(path, tracer) -> None:
    doc = {"traceEvents": chrome_trace_events(tracer), "displayTimeUnit": "ms"}
    Path(path).write_text(json.dumps(doc) + "\n")


# -- Schema validation --------------------------------------------------


def load_trace_schema() -> dict:
    return json.loads(_SCHEMA_PATH.read_text())


def _validate(value, schema: dict, root: dict, path: str) -> None:
    ref = schema.get("$ref")
    if ref is not None:
        if not ref.startswith("#/"):
            raise ValueError(f"unsupported $ref {ref!r}")
        target = root
        for part in ref[2:].split("/"):
            target = target[part]
        _validate(value, target, root, path)
        return

    expected = schema.get("type")
    if expected is not None:
        checks = {
            "object": lambda v: isinstance(v, dict),
            "array": lambda v: isinstance(v, list),
            "string": lambda v: isinstance(v, str),
            "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
            "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
            "boolean": lambda v: isinstance(v, bool),
        }
        if expected not in checks:
            raise ValueError(f"unsupported schema type {expected!r}")
        if not checks[expected](value):
            raise ValueError(
                f"{path}: expected {expected}, got {type(value).__name__}"
            )

    enum = schema.get("enum")
    if enum is not None and value not in enum:
        raise ValueError(f"{path}: {value!r} not one of {enum}")

    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                raise ValueError(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, sub in properties.items():
            if key in value:
                _validate(value[key], sub, root, f"{path}.{key}")

    if isinstance(value, list):
        items = schema.get("items")
        if items is not None:
            for i, element in enumerate(value):
                _validate(element, items, root, f"{path}[{i}]")


def validate_trace(doc: dict, schema: dict | None = None) -> None:
    """Raise ``ValueError`` if ``doc`` does not match the trace schema."""
    schema = schema if schema is not None else load_trace_schema()
    _validate(doc, schema, schema, "$")


# -- Text rendering -----------------------------------------------------

_TREE_ATTRS = ("tuples_in", "tuples_out", "seq_bytes", "skipped_bytes",
               "gather_bytes", "saved_bytes", "cached", "coverage")


def render_tree(tracer, max_children: int = 12) -> str:
    """Human-readable span tree for the CLI (durations + key attrs)."""
    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        extras = []
        for key in _TREE_ATTRS:
            if key in span.attrs:
                value = span.attrs[key]
                extras.append(
                    f"{key}={value:.0f}" if isinstance(value, float) else f"{key}={value}"
                )
        if span.events:
            extras.append(f"events={len(span.events)}")
        suffix = f"  [{', '.join(extras)}]" if extras else ""
        lines.append(
            f"{'  ' * depth}{span.kind}:{span.name}  "
            f"{span.duration_s * 1e3:.3f} ms{suffix}"
        )
        shown = span.children[:max_children]
        for child in shown:
            walk(child, depth + 1)
        hidden = len(span.children) - len(shown)
        if hidden > 0:
            lines.append(f"{'  ' * (depth + 1)}... {hidden} more spans")

    for root in tracer.roots:
        walk(root, 0)
    return "\n".join(lines)
