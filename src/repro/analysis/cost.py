"""Cost-normalized analysis (Fig. 5: MSRP, Fig. 6: hourly).

The paper's normalization: improvement = (t_server x price_server) /
(t_pi_config x price_pi_config). Above 1 (the dotted break-even line) the
Pi configuration delivers more performance per dollar.
"""

from __future__ import annotations

from repro.hardware import PLATFORMS, PI_KEY, PlatformSpec, get_platform

__all__ = ["msrp_improvement", "hourly_improvement", "break_even_nodes",
           "normalized_improvement"]


def normalized_improvement(
    server_seconds: float,
    server_price: float,
    pi_seconds: float,
    pi_price: float,
) -> float:
    """Generic cost-normalized improvement factor (paper §III)."""
    if min(server_seconds, server_price, pi_seconds, pi_price) <= 0:
        raise ValueError("runtimes and prices must be positive")
    return (server_seconds * server_price) / (pi_seconds * pi_price)


def msrp_improvement(
    server: "str | PlatformSpec",
    server_seconds: float,
    pi_seconds: float,
    n_nodes: int = 1,
) -> float:
    """Fig. 5 cell: MSRP-normalized improvement of an n-node Pi
    configuration over a server. On-premises servers are dual-socket, so
    their list price is doubled (``total_msrp_usd``), as in the paper."""
    spec = get_platform(server) if isinstance(server, str) else server
    if spec.total_msrp_usd is None:
        raise ValueError(f"{spec.key!r} has no public MSRP (custom cloud SKU)")
    pi = PLATFORMS[PI_KEY]
    return normalized_improvement(
        server_seconds, spec.total_msrp_usd, pi_seconds, pi.msrp_usd * n_nodes
    )


def hourly_improvement(
    server: "str | PlatformSpec",
    server_seconds: float,
    pi_seconds: float,
    n_nodes: int = 1,
) -> float:
    """Fig. 6 cell: hourly-cost-normalized improvement (cloud servers use
    their EC2 on-demand price; the Pi uses its electricity cost)."""
    spec = get_platform(server) if isinstance(server, str) else server
    if spec.hourly_usd is None:
        raise ValueError(f"{spec.key!r} has no hourly price (on-premises)")
    pi = PLATFORMS[PI_KEY]
    return normalized_improvement(
        server_seconds, spec.hourly_usd, pi_seconds, pi.hourly_usd * n_nodes
    )


def break_even_nodes(
    server: "str | PlatformSpec",
    server_seconds: float,
    cluster_seconds_by_nodes: dict[int, float],
    metric: str = "msrp",
) -> int | None:
    """Smallest cluster size whose normalized improvement crosses 1.0
    (the paper's dotted break-even line), or None if none does."""
    improve = msrp_improvement if metric == "msrp" else hourly_improvement
    for nodes in sorted(cluster_seconds_by_nodes):
        if improve(server, server_seconds, cluster_seconds_by_nodes[nodes], nodes) >= 1.0:
            return nodes
    return None
