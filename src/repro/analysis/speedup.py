"""Speedup analysis (Fig. 3).

The paper plots the Pi configuration's performance relative to each
comparison point: ``relative = t_comparison / t_pi`` — values above 1
mean the Pi (or WIMPI) configuration is faster.
"""

from __future__ import annotations

import statistics

__all__ = ["relative_performance", "speedup_table", "median_relative"]


def relative_performance(comparison_seconds: float, pi_seconds: float) -> float:
    """t_comparison / t_pi (> 1: the Pi configuration wins)."""
    if pi_seconds <= 0 or comparison_seconds <= 0:
        raise ValueError("runtimes must be positive")
    return comparison_seconds / pi_seconds


def speedup_table(
    server_runtimes: dict[str, dict[int, float]],
    pi_runtimes: dict[int, float],
) -> dict[str, dict[int, float]]:
    """Per-server, per-query relative performance of the Pi configuration.

    Args:
        server_runtimes: ``{platform: {query: seconds}}``.
        pi_runtimes: ``{query: seconds}`` for the Pi configuration.
    """
    table: dict[str, dict[int, float]] = {}
    for platform, per_query in server_runtimes.items():
        table[platform] = {
            q: relative_performance(seconds, pi_runtimes[q])
            for q, seconds in per_query.items()
            if q in pi_runtimes
        }
    return table


def median_relative(speedups: dict[str, dict[int, float]]) -> dict[str, float]:
    """Median relative performance per comparison point (the paper's
    headline "0.1-0.3x" SF 1 statistic)."""
    return {
        platform: statistics.median(per_query.values())
        for platform, per_query in speedups.items()
        if per_query
    }
