"""Total-cost-of-ownership sensitivity analysis (paper §III-A3).

The paper *declines* a formal TCO comparison because component prices
vary too widely — but asserts that any reasonable TCO "would have
heavily favored the Raspberry Pi 3B+ due to much cheaper peripherals and
significantly reduced energy costs." This module makes that claim
checkable: a parameterized TCO model whose inputs span the plausible
ranges the paper names, so the conclusion can be tested across the whole
parameter space instead of at one cherry-picked point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware import KWH_PRICE_USD, PLATFORMS, PI_KEY, PlatformSpec, get_platform

__all__ = ["TcoAssumptions", "TcoEstimate", "estimate_tco", "tco_advantage"]


@dataclass(frozen=True)
class TcoAssumptions:
    """The knobs the paper says vary too much to fix (with their
    plausible ranges as documented defaults).

    Attributes:
        years: amortization horizon.
        kwh_price_usd: electricity price.
        server_components_factor: non-CPU server hardware (memory, SSDs,
            motherboard, PSUs, chassis, fans) as a multiple of the CPU
            MSRP — 1.0-3.0 is typical for analytics boxes.
        pi_peripherals_usd: per-node extras (microSD, cables, PSU share)
            — the paper says $10-15.
        cooling_overhead: extra energy per unit of IT energy for
            server-room cooling (PUE-1); 0.2-0.8 in practice. The Pi
            cluster is air-cooled at ambient (0.0), per the paper.
        utilization: average duty cycle applied to peak power.
    """

    years: float = 3.0
    kwh_price_usd: float = KWH_PRICE_USD
    server_components_factor: float = 1.5
    pi_peripherals_usd: float = 12.5
    cooling_overhead: float = 0.4
    utilization: float = 0.5


@dataclass(frozen=True)
class TcoEstimate:
    """A configuration's cost breakdown over the horizon (USD)."""

    hardware_usd: float
    energy_usd: float
    cooling_usd: float

    @property
    def total_usd(self) -> float:
        return self.hardware_usd + self.energy_usd + self.cooling_usd


def estimate_tco(
    platform: "str | PlatformSpec",
    assumptions: TcoAssumptions | None = None,
    n_nodes: int = 1,
) -> TcoEstimate:
    """TCO of ``n_nodes`` of a platform under ``assumptions``.

    Servers: CPU MSRP x (1 + components factor), CPU TDP for energy,
    cooling overhead on top. Pi nodes: $35 + peripherals, whole-board
    5.1 W, no cooling infrastructure (the paper's air-cooled cluster).
    """
    a = assumptions or TcoAssumptions()
    spec = get_platform(platform) if isinstance(platform, str) else platform
    if spec.total_msrp_usd is None or spec.total_tdp_w is None:
        raise ValueError(f"{spec.key!r} lacks public MSRP/TDP (cloud SKU)")
    hours = a.years * 365.0 * 24.0
    energy_kwh = spec.total_tdp_w * a.utilization * hours / 1000.0 * n_nodes
    energy_usd = energy_kwh * a.kwh_price_usd
    if spec.key == PI_KEY:
        hardware = (spec.msrp_usd + a.pi_peripherals_usd) * n_nodes
        cooling = 0.0
    else:
        hardware = spec.total_msrp_usd * (1.0 + a.server_components_factor) * n_nodes
        cooling = energy_usd * a.cooling_overhead
    return TcoEstimate(hardware_usd=hardware, energy_usd=energy_usd, cooling_usd=cooling)


def tco_advantage(
    server: "str | PlatformSpec",
    n_pi_nodes: int,
    performance_ratio: float,
    assumptions: TcoAssumptions | None = None,
) -> float:
    """Performance-normalized TCO advantage of an ``n_pi_nodes`` cluster
    over a server.

    ``performance_ratio`` is t_cluster / t_server for the workload
    (e.g. ~1.3 for the 24-node WIMPI vs op-e5 at SF 10). The advantage is
    (TCO_server x t_cluster^-1-normalization): > 1 means the cluster
    delivers more work per dollar of ownership.
    """
    if performance_ratio <= 0:
        raise ValueError("performance_ratio must be positive")
    server_tco = estimate_tco(server, assumptions).total_usd
    cluster_tco = estimate_tco(PI_KEY, assumptions, n_nodes=n_pi_nodes).total_usd
    return server_tco / (cluster_tco * performance_ratio)
