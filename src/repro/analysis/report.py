"""ASCII renderers that print tables/figures in the paper's layout."""

from __future__ import annotations

__all__ = ["render_runtime_table", "render_series", "render_matrix"]


def _fmt(value, width: int = 8, digits: int = 3) -> str:
    if value is None:
        return " " * (width - 1) + "-"
    if isinstance(value, float):
        return f"{value:{width}.{digits}f}"
    return f"{value!s:>{width}}"


def render_runtime_table(
    runtimes: dict[str, dict[int, float]],
    queries: list[int] | None = None,
    title: str = "Runtimes (s)",
) -> str:
    """Render a Table II/III-style grid: one row per platform, one column
    per query."""
    if not runtimes:
        return f"{title}\n(empty)"
    if queries is None:
        queries = sorted({q for per in runtimes.values() for q in per})
    name_width = max(len(name) for name in runtimes) + 2
    lines = [title]
    header = " " * name_width + "".join(f"{'Q' + str(q):>9}" for q in queries)
    lines.append(header)
    for name, per_query in runtimes.items():
        cells = "".join(" " + _fmt(per_query.get(q)) for q in queries)
        lines.append(f"{name:<{name_width}}" + cells)
    return "\n".join(lines)


def render_series(
    series: dict[str, dict[int, float]],
    title: str,
    x_label: str = "x",
    break_even: float | None = None,
) -> str:
    """Render figure-style series (one line per series, one column per x
    value), optionally noting the break-even threshold."""
    xs = sorted({x for per in series.values() for x in per})
    name_width = max((len(n) for n in series), default=4) + 2
    lines = [title]
    if break_even is not None:
        lines.append(f"(values above {break_even:g} favor the Pi configuration)")
    lines.append(" " * name_width + "".join(f"{x_label + str(x):>9}" for x in xs))
    for name, per in series.items():
        cells = "".join(" " + _fmt(per.get(x)) for x in xs)
        lines.append(f"{name:<{name_width}}" + cells)
    return "\n".join(lines)


def render_matrix(
    rows: list[tuple],
    headers: list[str],
    title: str = "",
) -> str:
    """Render a generic aligned table from tuples."""
    widths = [
        max(len(headers[i]), max((len(_fmt(r[i]).strip()) for r in rows), default=0)) + 2
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("".join(f"{h:>{w}}" for h, w in zip(headers, widths)))
    for row in rows:
        cells = []
        for value, width in zip(row, widths):
            cells.append(_fmt(value, width=width) if isinstance(value, float) else f"{value!s:>{width}}")
        lines.append("".join(cells))
    return "\n".join(lines)
