"""Cost, energy, and speedup analyses (Section III / Figs. 3, 5-7)."""

from .cost import break_even_nodes, hourly_improvement, msrp_improvement, normalized_improvement
from .energy import energy_improvement, energy_joules
from .report import render_matrix, render_runtime_table, render_series
from .speedup import median_relative, relative_performance, speedup_table
from .tco import TcoAssumptions, TcoEstimate, estimate_tco, tco_advantage

__all__ = [
    "break_even_nodes", "energy_improvement", "energy_joules",
    "hourly_improvement", "median_relative", "msrp_improvement",
    "normalized_improvement", "relative_performance", "render_matrix",
    "render_runtime_table", "render_series", "speedup_table",
    "TcoAssumptions", "TcoEstimate", "estimate_tco", "tco_advantage",
]
