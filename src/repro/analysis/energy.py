"""Energy-normalized analysis (Fig. 7).

Improvement = (t_server x TDP_server) / (t_pi_config x 5.1 W x nodes),
using only CPU TDP for the servers (the paper's deliberately pessimistic
accounting for the Pi) — cloud SKUs have no public TDP and are excluded,
as in the paper.
"""

from __future__ import annotations

from repro.hardware import PLATFORMS, PI_KEY, PlatformSpec, get_platform

__all__ = ["energy_improvement", "energy_joules"]


def energy_joules(spec: "str | PlatformSpec", seconds: float, nodes: int = 1) -> float:
    """Active energy of a run under the paper's TDP methodology."""
    platform = get_platform(spec) if isinstance(spec, str) else spec
    if platform.total_tdp_w is None:
        raise ValueError(f"{platform.key!r} has no public TDP (custom cloud SKU)")
    return seconds * platform.total_tdp_w * nodes


def energy_improvement(
    server: "str | PlatformSpec",
    server_seconds: float,
    pi_seconds: float,
    n_nodes: int = 1,
) -> float:
    """Fig. 7 cell: energy-normalized improvement of an n-node Pi
    configuration over an on-premises server."""
    pi = PLATFORMS[PI_KEY]
    server_j = energy_joules(server, server_seconds)
    pi_j = pi_seconds * pi.tdp_w * n_nodes
    if pi_j <= 0:
        raise ValueError("pi energy must be positive")
    return server_j / pi_j
