"""TPC-H text distributions: names, types, containers, comment pools.

The official dbgen synthesizes comments from a grammar; here comments are
drawn from deterministic pools that preserve the properties queries
filter on (the ``special ... requests`` phrase for Q13, the
``Customer ... Complaints`` phrase for Q16) at the spec's frequencies.
Pooling makes generation fast and mirrors dictionary-encoded storage.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "COLORS", "TYPE_SYLLABLE_1", "TYPE_SYLLABLE_2", "TYPE_SYLLABLE_3",
    "CONTAINER_SYLLABLE_1", "CONTAINER_SYLLABLE_2", "SEGMENTS", "PRIORITIES",
    "SHIP_MODES", "SHIP_INSTRUCTIONS", "NATIONS", "REGIONS", "NOUNS", "VERBS",
    "ADJECTIVES", "comment_pool", "part_types", "part_containers",
]

# The spec's 92 part-name color words (P_NAME is 5 of these).
COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "hyacinth", "indian", "ivory", "khaki", "lace", "lavender", "lawn",
    "lemon", "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
    "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
    "orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder",
    "puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
    "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
    "steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white",
]

TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

CONTAINER_SYLLABLE_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINER_SYLLABLE_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIP_INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]

# (name, regionkey) in nationkey order, per the spec.
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

NOUNS = [
    "packages", "requests", "accounts", "deposits", "foxes", "ideas",
    "theodolites", "pinto beans", "instructions", "dependencies", "excuses",
    "platelets", "asymptotes", "courts", "dolphins", "multipliers", "sauternes",
    "warthogs", "frets", "dinos", "attainments", "somas", "braids", "hockey players",
]
VERBS = [
    "sleep", "wake", "are", "cajole", "haggle", "nag", "use", "boost",
    "affix", "detect", "integrate", "maintain", "nod", "was", "lose", "sublate",
    "solve", "thrash", "promise", "engage", "hinder", "print", "x-ray", "breach",
]
ADJECTIVES = [
    "furious", "sly", "careful", "blithe", "quick", "fluffy", "slow", "quiet",
    "ruthless", "thin", "close", "dogged", "daring", "brave", "stealthy",
    "permanent", "enticing", "idle", "busy", "regular", "final", "ironic",
    "even", "bold", "silent",
]


def comment_pool(
    rng: np.ndarray | np.random.Generator,
    pool_size: int,
    words_min: int = 4,
    words_max: int = 9,
    plant_phrase: str | None = None,
    plant_fraction: float = 0.0,
) -> np.ndarray:
    """Build a deterministic pool of distinct comment strings.

    A ``plant_phrase`` like ``"special|requests"`` embeds its parts (in
    order, separated by filler) into ``plant_fraction`` of the pool —
    exactly what LIKE '%special%requests%' matches.
    """
    comments = []
    for i in range(pool_size):
        n_words = int(rng.integers(words_min, words_max + 1))
        picks = rng.integers(0, len(ADJECTIVES), size=n_words)
        words = []
        for j, p in enumerate(picks):
            source = (ADJECTIVES, NOUNS, VERBS)[j % 3]
            words.append(source[int(p) % len(source)])
        comments.append(" ".join(words) + f" #{i}")
    if plant_phrase and plant_fraction > 0:
        parts = plant_phrase.split("|")
        n_plant = max(1, round(pool_size * plant_fraction))
        for i in range(n_plant):
            idx = int(rng.integers(0, pool_size))
            filler = ADJECTIVES[idx % len(ADJECTIVES)]
            comments[idx] = f"the {parts[0]} {filler} {parts[1]} #{idx}p"
    return np.asarray(comments, dtype=object)


def part_types() -> list[str]:
    """All 150 part types (syllable1 syllable2 syllable3)."""
    return [
        f"{a} {b} {c}"
        for a in TYPE_SYLLABLE_1
        for b in TYPE_SYLLABLE_2
        for c in TYPE_SYLLABLE_3
    ]


def part_containers() -> list[str]:
    """All 40 containers (syllable1 syllable2)."""
    return [f"{a} {b}" for a in CONTAINER_SYLLABLE_1 for b in CONTAINER_SYLLABLE_2]
