"""Deterministic TPC-H data generator (dbgen stand-in).

Generates all 8 tables at any scale factor with numpy, preserving the
value distributions, key formulas, and cross-table correlations the 22
queries depend on:

* ``ps_suppkey`` follows the spec's supplier-spreading formula, and
  ``l_suppkey`` always matches one of the part's four partsupp rows.
* Only customers whose key is not divisible by 3 place orders (so Q13's
  zero-order spike and Q22's "customers without orders" exist).
* ``o_totalprice`` / ``o_orderstatus`` are derived from the order's
  actual lineitems.
* Comment columns draw from deterministic pools that plant Q13's
  ``special … requests`` and Q16's ``Customer … Complaints`` phrases at
  spec-like frequencies.

Everything is reproducible from ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.engine import Column, Database, Table, date_to_days
from repro.engine.types import DATE, FLOAT64, INT64

from . import text
from .schema import rows_at_sf

__all__ = ["generate", "generate_table", "CURRENT_DATE"]

# The spec's "current date" used to derive return flags and line status.
CURRENT_DATE = date_to_days("1995-06-17")
_MIN_ORDER_DATE = date_to_days("1992-01-01")
_MAX_ORDER_DATE = date_to_days("1998-08-02") - 151

_TABLE_SEEDS = {
    "region": 0, "nation": 1, "supplier": 2, "part": 3,
    "partsupp": 4, "customer": 5, "orders": 6, "lineitem": 7,
}


def _rng(seed: int, table: str) -> np.random.Generator:
    return np.random.default_rng([seed, _TABLE_SEEDS[table]])


def _pool_column(rng: np.random.Generator, n: int, pool) -> Column:
    """A string column sampled uniformly from a pool of distinct values."""
    pool_arr = np.asarray(pool, dtype=object)
    codes = rng.integers(0, len(pool_arr), size=n).astype(np.int32)
    return Column.from_string_codes(codes, pool_arr)


def _phones(rng: np.random.Generator, nationkeys: np.ndarray) -> Column:
    """Phone numbers whose first two digits are nationkey + 10 (Q22)."""
    local1 = rng.integers(100, 1000, size=len(nationkeys))
    local2 = rng.integers(100, 1000, size=len(nationkeys))
    local3 = rng.integers(1000, 10000, size=len(nationkeys))
    values = [
        f"{nk + 10}-{a}-{b}-{c}"
        for nk, a, b, c in zip(nationkeys, local1, local2, local3)
    ]
    return Column.from_strings(values)


def _acctbal(rng: np.random.Generator, n: int) -> Column:
    cents = rng.integers(-99_999, 1_000_000, size=n)
    return Column(FLOAT64, cents / 100.0)


def _retail_price(partkeys: np.ndarray) -> np.ndarray:
    return (90_000 + ((partkeys // 10) % 20_001) + 100 * (partkeys % 1_000)) / 100.0


def _ps_suppkey(partkeys: np.ndarray, i: np.ndarray, n_supp: int) -> np.ndarray:
    """The spec's supplier-spreading formula for partsupp rows."""
    return (partkeys + i * (n_supp // 4 + (partkeys - 1) // n_supp)) % n_supp + 1


# ----------------------------------------------------------------------
# Per-table generators
# ----------------------------------------------------------------------


def _gen_region(rng: np.random.Generator) -> Table:
    names = Column.from_strings(text.REGIONS)
    pool = text.comment_pool(rng, 5)
    return Table("region", {
        "r_regionkey": Column.from_ints(range(5)),
        "r_name": names,
        "r_comment": _pool_column(rng, 5, pool),
    })


def _gen_nation(rng: np.random.Generator) -> Table:
    pool = text.comment_pool(rng, 25)
    return Table("nation", {
        "n_nationkey": Column.from_ints(range(25)),
        "n_name": Column.from_strings([n for n, _ in text.NATIONS]),
        "n_regionkey": Column.from_ints([r for _, r in text.NATIONS]),
        "n_comment": _pool_column(rng, 25, pool),
    })


def _gen_supplier(rng: np.random.Generator, n: int) -> Table:
    keys = np.arange(1, n + 1, dtype=np.int64)
    nationkeys = rng.integers(0, 25, size=n)
    # Spec: ~5 suppliers per 10,000 carry the Customer...Complaints phrase
    # (Q16 excludes them). With pooled comments the per-row probability is
    # the pool fraction, so plant 1 poisoned entry per 2000 pool slots.
    comment_pool = text.comment_pool(rng, max(200, min(n, 2000)))
    n_complaints = max(1, round(0.0005 * len(comment_pool)))
    for i in range(n_complaints):
        comment_pool[i * 7 % len(comment_pool)] = f"sly Customer deposits Complaints #{i}c"
    addr_pool = text.comment_pool(rng, 200, words_min=2, words_max=4)
    return Table("supplier", {
        "s_suppkey": Column(INT64, keys),
        "s_name": Column.from_strings([f"Supplier#{k:09d}" for k in keys]),
        "s_address": _pool_column(rng, n, addr_pool),
        "s_nationkey": Column(INT64, nationkeys.astype(np.int64)),
        "s_phone": _phones(rng, nationkeys),
        "s_acctbal": _acctbal(rng, n),
        "s_comment": _pool_column(rng, n, comment_pool),
    })


def _gen_part(rng: np.random.Generator, n: int) -> Table:
    keys = np.arange(1, n + 1, dtype=np.int64)
    colors = np.asarray(text.COLORS, dtype=object)
    picks = rng.integers(0, len(colors), size=(n, 5))
    names = [" ".join(colors[row]) for row in picks]
    mfgr_ids = rng.integers(1, 6, size=n)
    brand_ids = rng.integers(1, 6, size=n)
    mfgr = [f"Manufacturer#{m}" for m in mfgr_ids]
    brand = [f"Brand#{m}{b}" for m, b in zip(mfgr_ids, brand_ids)]
    comment = text.comment_pool(rng, 200, words_min=2, words_max=5)
    return Table("part", {
        "p_partkey": Column(INT64, keys),
        "p_name": Column.from_strings(names),
        "p_mfgr": Column.from_strings(mfgr),
        "p_brand": Column.from_strings(brand),
        "p_type": _pool_column(rng, n, text.part_types()),
        "p_size": Column(INT64, rng.integers(1, 51, size=n).astype(np.int64)),
        "p_container": _pool_column(rng, n, text.part_containers()),
        "p_retailprice": Column(FLOAT64, _retail_price(keys)),
        "p_comment": _pool_column(rng, n, comment),
    })


def _gen_partsupp(rng: np.random.Generator, n_part: int, n_supp: int) -> Table:
    partkeys = np.repeat(np.arange(1, n_part + 1, dtype=np.int64), 4)
    i = np.tile(np.arange(4, dtype=np.int64), n_part)
    suppkeys = _ps_suppkey(partkeys, i, n_supp)
    n = len(partkeys)
    comment = text.comment_pool(rng, 200)
    return Table("partsupp", {
        "ps_partkey": Column(INT64, partkeys),
        "ps_suppkey": Column(INT64, suppkeys),
        "ps_availqty": Column(INT64, rng.integers(1, 10_000, size=n).astype(np.int64)),
        "ps_supplycost": Column(FLOAT64, rng.integers(100, 100_001, size=n) / 100.0),
        "ps_comment": _pool_column(rng, n, comment),
    })


def _gen_customer(rng: np.random.Generator, n: int) -> Table:
    keys = np.arange(1, n + 1, dtype=np.int64)
    nationkeys = rng.integers(0, 25, size=n)
    comment = text.comment_pool(rng, max(200, min(n, 2000)))
    addr_pool = text.comment_pool(rng, 200, words_min=2, words_max=4)
    return Table("customer", {
        "c_custkey": Column(INT64, keys),
        "c_name": Column.from_strings([f"Customer#{k:09d}" for k in keys]),
        "c_address": _pool_column(rng, n, addr_pool),
        "c_nationkey": Column(INT64, nationkeys.astype(np.int64)),
        "c_phone": _phones(rng, nationkeys),
        "c_acctbal": _acctbal(rng, n),
        "c_mktsegment": _pool_column(rng, n, text.SEGMENTS),
        "c_comment": _pool_column(rng, n, comment),
    })


def _gen_orders_and_lineitem(
    rng: np.random.Generator,
    n_orders: int,
    n_cust: int,
    n_part: int,
    n_supp: int,
    part_retail: np.ndarray,
) -> tuple[Table, Table]:
    orderkeys = np.arange(1, n_orders + 1, dtype=np.int64)
    # Spec: customers with custkey % 3 == 0 never order (Q13/Q22 depend
    # on a large population of order-less customers).
    n_valid_cust = n_cust - n_cust // 3  # keys with custkey % 3 != 0
    idx = rng.integers(0, max(1, n_valid_cust), size=n_orders)
    custkeys = (3 * (idx // 2) + (idx % 2) + 1).astype(np.int64)
    orderdates = rng.integers(_MIN_ORDER_DATE, _MAX_ORDER_DATE + 1, size=n_orders)

    lines_per_order = rng.integers(1, 8, size=n_orders)
    n_lines = int(lines_per_order.sum())
    l_orderkey = np.repeat(orderkeys, lines_per_order)
    order_row = np.repeat(np.arange(n_orders), lines_per_order)
    l_linenumber = (
        np.arange(n_lines) - np.repeat(np.cumsum(lines_per_order) - lines_per_order, lines_per_order) + 1
    )

    l_partkey = rng.integers(1, n_part + 1, size=n_lines).astype(np.int64)
    supp_i = rng.integers(0, 4, size=n_lines)
    l_suppkey = _ps_suppkey(l_partkey, supp_i, n_supp)
    l_quantity = rng.integers(1, 51, size=n_lines).astype(np.float64)
    l_discount = rng.integers(0, 11, size=n_lines) / 100.0
    l_tax = rng.integers(0, 9, size=n_lines) / 100.0
    l_extendedprice = l_quantity * part_retail[l_partkey - 1]

    base = orderdates[order_row]
    l_shipdate = base + rng.integers(1, 122, size=n_lines)
    l_commitdate = base + rng.integers(30, 91, size=n_lines)
    l_receiptdate = l_shipdate + rng.integers(1, 31, size=n_lines)

    shipped = l_receiptdate <= CURRENT_DATE
    returnflag_codes = np.where(
        shipped, rng.integers(0, 2, size=n_lines), 2
    ).astype(np.int32)  # 0='A', 1='R', 2='N'
    linestatus_codes = (l_shipdate > CURRENT_DATE).astype(np.int32)  # 0='F', 1='O'

    # Order-level derivations from actual lineitems.
    line_price = l_extendedprice * (1.0 + l_tax) * (1.0 - l_discount)
    o_totalprice = np.bincount(order_row, weights=line_price, minlength=n_orders)
    open_lines = np.bincount(order_row, weights=(linestatus_codes == 1), minlength=n_orders)
    status_codes = np.where(
        open_lines == 0, 0, np.where(open_lines == lines_per_order, 1, 2)
    ).astype(np.int32)  # 0='F', 1='O', 2='P'

    o_comment_pool = text.comment_pool(
        rng, 2000, plant_phrase="special|requests", plant_fraction=0.01
    )
    l_comment_pool = text.comment_pool(rng, 2000)
    n_clerks = max(1, n_orders // 1000)

    orders = Table("orders", {
        "o_orderkey": Column(INT64, orderkeys),
        "o_custkey": Column(INT64, custkeys),
        "o_orderstatus": Column.from_string_codes(
            status_codes, np.asarray(["F", "O", "P"], dtype=object)
        ),
        "o_totalprice": Column(FLOAT64, np.round(o_totalprice, 2)),
        "o_orderdate": Column(DATE, orderdates.astype(np.int32)),
        "o_orderpriority": _pool_column(rng, n_orders, text.PRIORITIES),
        "o_clerk": _pool_column(
            rng, n_orders, [f"Clerk#{i:09d}" for i in range(1, n_clerks + 1)]
        ),
        "o_shippriority": Column(INT64, np.zeros(n_orders, dtype=np.int64)),
        "o_comment": _pool_column(rng, n_orders, o_comment_pool),
    })

    lineitem = Table("lineitem", {
        "l_orderkey": Column(INT64, l_orderkey),
        "l_partkey": Column(INT64, l_partkey),
        "l_suppkey": Column(INT64, l_suppkey),
        "l_linenumber": Column(INT64, l_linenumber.astype(np.int64)),
        "l_quantity": Column(FLOAT64, l_quantity),
        "l_extendedprice": Column(FLOAT64, np.round(l_extendedprice, 2)),
        "l_discount": Column(FLOAT64, l_discount),
        "l_tax": Column(FLOAT64, l_tax),
        "l_returnflag": Column.from_string_codes(
            returnflag_codes, np.asarray(["A", "R", "N"], dtype=object)
        ),
        "l_linestatus": Column.from_string_codes(
            linestatus_codes, np.asarray(["F", "O"], dtype=object)
        ),
        "l_shipdate": Column(DATE, l_shipdate.astype(np.int32)),
        "l_commitdate": Column(DATE, l_commitdate.astype(np.int32)),
        "l_receiptdate": Column(DATE, l_receiptdate.astype(np.int32)),
        "l_shipinstruct": _pool_column(rng, n_lines, text.SHIP_INSTRUCTIONS),
        "l_shipmode": _pool_column(rng, n_lines, text.SHIP_MODES),
        "l_comment": _pool_column(rng, n_lines, l_comment_pool),
    })
    return orders, lineitem


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


def generate(scale_factor: float = 0.01, seed: int = 42) -> Database:
    """Generate a full TPC-H database at ``scale_factor``.

    Deterministic given (scale_factor, seed). SF 0.01 (~60k lineitems)
    generates in well under a second; SF 1 (~6M lineitems) takes a few
    seconds and ~1 GB of process memory.
    """
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    db = Database(f"tpch_sf{scale_factor:g}")
    n_supp = rows_at_sf("supplier", scale_factor)
    n_part = rows_at_sf("part", scale_factor)
    n_cust = rows_at_sf("customer", scale_factor)
    n_orders = rows_at_sf("orders", scale_factor)

    db.add(_gen_region(_rng(seed, "region")))
    db.add(_gen_nation(_rng(seed, "nation")))
    db.add(_gen_supplier(_rng(seed, "supplier"), n_supp))
    part = _gen_part(_rng(seed, "part"), n_part)
    db.add(part)
    db.add(_gen_partsupp(_rng(seed, "partsupp"), n_part, n_supp))
    db.add(_gen_customer(_rng(seed, "customer"), n_cust))
    orders, lineitem = _gen_orders_and_lineitem(
        _rng(seed, "orders"), n_orders, n_cust, n_part, n_supp,
        part.column("p_retailprice").values,
    )
    db.add(orders)
    db.add(lineitem)
    return db


def generate_table(name: str, scale_factor: float = 0.01, seed: int = 42) -> Table:
    """Generate a single table (orders/lineitem are generated together;
    asking for either builds both and returns the requested one)."""
    if name in ("orders", "lineitem"):
        n_supp = rows_at_sf("supplier", scale_factor)
        n_part = rows_at_sf("part", scale_factor)
        part = _gen_part(_rng(seed, "part"), n_part)
        orders, lineitem = _gen_orders_and_lineitem(
            _rng(seed, "orders"),
            rows_at_sf("orders", scale_factor),
            rows_at_sf("customer", scale_factor),
            n_part,
            n_supp,
            part.column("p_retailprice").values,
        )
        return orders if name == "orders" else lineitem
    if name == "region":
        return _gen_region(_rng(seed, "region"))
    if name == "nation":
        return _gen_nation(_rng(seed, "nation"))
    if name == "supplier":
        return _gen_supplier(_rng(seed, "supplier"), rows_at_sf("supplier", scale_factor))
    if name == "part":
        return _gen_part(_rng(seed, "part"), rows_at_sf("part", scale_factor))
    if name == "partsupp":
        return _gen_partsupp(
            _rng(seed, "partsupp"),
            rows_at_sf("part", scale_factor),
            rows_at_sf("supplier", scale_factor),
        )
    if name == "customer":
        return _gen_customer(_rng(seed, "customer"), rows_at_sf("customer", scale_factor))
    raise KeyError(f"unknown TPC-H table {name!r}")
