"""Q2 — Minimum Cost Supplier.

No lineitem at all — one of the queries where the paper found the Pi
most competitive.
"""

from repro.engine import Q, agg, col

NAME = "Minimum Cost Supplier"
TABLES = ("part", "supplier", "partsupp", "nation", "region")


def _regional_partsupp(db, region):
    """partsupp rows whose supplier sits in ``region``."""
    return (
        Q(db)
        .scan("partsupp")
        .join("supplier", on=[("ps_suppkey", "s_suppkey")])
        .join("nation", on=[("s_nationkey", "n_nationkey")])
        .join("region", on=[("n_regionkey", "r_regionkey")])
        .filter(col("r_name") == region)
    )


def build(db, params=None):
    p = params or {}
    size = p.get("size", 15)
    type_suffix = p.get("type", "%BRASS")
    region = p.get("region", "EUROPE")

    min_cost = (
        _regional_partsupp(db, region)
        .aggregate(by=["ps_partkey"], min_cost=agg.min(col("ps_supplycost")))
        .project(mc_partkey="ps_partkey", min_cost="min_cost")
    )
    return (
        Q(db)
        .scan("part")
        .filter((col("p_size") == size) & col("p_type").like(type_suffix))
        .join(_regional_partsupp(db, region), on=[("p_partkey", "ps_partkey")])
        .join(min_cost, on=[("p_partkey", "mc_partkey"), ("ps_supplycost", "min_cost")])
        .project(
            s_acctbal="s_acctbal",
            s_name="s_name",
            n_name="n_name",
            p_partkey="p_partkey",
            p_mfgr="p_mfgr",
            s_address="s_address",
            s_phone="s_phone",
            s_comment="s_comment",
        )
        .sort(("s_acctbal", "desc"), "n_name", "s_name", "p_partkey")
        .limit(100)
    )
