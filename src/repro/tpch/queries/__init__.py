"""Registry of the 22 TPC-H query definitions.

Usage::

    from repro.tpch.queries import get_query, ALL_QUERY_NUMBERS, CHOKEPOINTS
    plan = get_query(6).build(db, {"sf": 1.0})
"""

from __future__ import annotations

from .base import QueryDef
from . import (
    q01, q02, q03, q04, q05, q06, q07, q08, q09, q10, q11,
    q12, q13, q14, q15, q16, q17, q18, q19, q20, q21, q22,
)

__all__ = ["QUERIES", "ALL_QUERY_NUMBERS", "CHOKEPOINTS", "get_query", "QueryDef"]

_MODULES = {
    1: q01, 2: q02, 3: q03, 4: q04, 5: q05, 6: q06, 7: q07, 8: q08,
    9: q09, 10: q10, 11: q11, 12: q12, 13: q13, 14: q14, 15: q15, 16: q16,
    17: q17, 18: q18, 19: q19, 20: q20, 21: q21, 22: q22,
}

QUERIES: dict[int, QueryDef] = {
    number: QueryDef(
        number=number,
        name=module.NAME,
        build=module.build,
        uses_lineitem="lineitem" in module.TABLES,
        tables=tuple(module.TABLES),
    )
    for number, module in _MODULES.items()
}

ALL_QUERY_NUMBERS = tuple(sorted(QUERIES))

# The 8 chokepoint queries the paper uses for SF 10 / the strategy study
# (following Menon et al. and Crotty et al.).
CHOKEPOINTS = (1, 3, 4, 5, 6, 13, 14, 19)


def get_query(number: int) -> QueryDef:
    """Look up a TPC-H query definition by number (1-22)."""
    try:
        return QUERIES[number]
    except KeyError:
        raise KeyError(f"TPC-H queries are numbered 1-22, got {number}") from None
