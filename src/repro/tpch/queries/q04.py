"""Q4 — Order Priority Checking (EXISTS via semi join)."""

from repro.engine import Q, agg, col

NAME = "Order Priority Checking"
TABLES = ("orders", "lineitem")


def build(db, params=None):
    p = params or {}
    start = p.get("date", "1993-07-01")
    end = p.get("date_end", "1993-10-01")
    late_lines = Q(db).scan("lineitem").filter(col("l_commitdate") < col("l_receiptdate"))
    return (
        Q(db)
        .scan("orders")
        .filter((col("o_orderdate") >= start) & (col("o_orderdate") < end))
        .join(late_lines, on=[("o_orderkey", "l_orderkey")], how="semi")
        .aggregate(by=["o_orderpriority"], order_count=agg.count_star())
        .sort("o_orderpriority")
    )
