"""Q16 — Parts/Supplier Relationship (NOT IN via anti join, COUNT DISTINCT).

No lineitem — with Q11, one of the Pi's most competitive queries.
"""

from repro.engine import Q, agg, col

NAME = "Parts/Supplier Relationship"
TABLES = ("partsupp", "part", "supplier")


def build(db, params=None):
    p = params or {}
    brand = p.get("brand", "Brand#45")
    type_prefix = p.get("type", "MEDIUM POLISHED%")
    sizes = p.get("sizes", [49, 14, 23, 45, 19, 3, 36, 9])
    complainers = (
        Q(db)
        .scan("supplier")
        .filter(col("s_comment").like("%Customer%Complaints%"))
    )
    return (
        Q(db)
        .scan("partsupp")
        .join(
            Q(db)
            .scan("part")
            .filter(
                (col("p_brand") != brand)
                & col("p_type").not_like(type_prefix)
                & col("p_size").isin(sizes)
            ),
            on=[("ps_partkey", "p_partkey")],
        )
        .join(complainers, on=[("ps_suppkey", "s_suppkey")], how="anti")
        .aggregate(
            by=["p_brand", "p_type", "p_size"],
            supplier_cnt=agg.count_distinct(col("ps_suppkey")),
        )
        .sort(("supplier_cnt", "desc"), "p_brand", "p_type", "p_size")
    )
