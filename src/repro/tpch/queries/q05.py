"""Q5 — Local Supplier Volume (customer and supplier in the same nation)."""

from repro.engine import Q, agg, col

from .base import revenue_expr

NAME = "Local Supplier Volume"
TABLES = ("customer", "orders", "lineitem", "supplier", "nation", "region")


def build(db, params=None):
    p = params or {}
    region = p.get("region", "ASIA")
    start = p.get("date", "1994-01-01")
    end = p.get("date_end", "1995-01-01")
    return (
        Q(db)
        .scan("customer")
        .join(
            Q(db)
            .scan("orders")
            .filter((col("o_orderdate") >= start) & (col("o_orderdate") < end)),
            on=[("c_custkey", "o_custkey")],
        )
        .join("lineitem", on=[("o_orderkey", "l_orderkey")])
        # The "local" condition: the line's supplier must share the
        # customer's nation, expressed as a second equi-join key.
        .join(
            "supplier",
            on=[("l_suppkey", "s_suppkey"), ("c_nationkey", "s_nationkey")],
        )
        .join("nation", on=[("c_nationkey", "n_nationkey")])
        .join(
            Q(db).scan("region").filter(col("r_name") == region),
            on=[("n_regionkey", "r_regionkey")],
        )
        .aggregate(by=["n_name"], revenue=agg.sum(revenue_expr()))
        .sort(("revenue", "desc"))
    )
