"""Q20 — Potential Part Promotion (nested IN subqueries via semi joins)."""

from repro.engine import Q, agg, col

NAME = "Potential Part Promotion"
TABLES = ("supplier", "nation", "partsupp", "part", "lineitem")


def build(db, params=None):
    p = params or {}
    color = p.get("color", "forest")
    nation = p.get("nation", "CANADA")
    start = p.get("date", "1994-01-01")
    end = p.get("date_end", "1995-01-01")

    forest_parts = Q(db).scan("part").filter(col("p_name").like(f"{color}%"))
    shipped_qty = (
        Q(db)
        .scan("lineitem")
        .filter((col("l_shipdate") >= start) & (col("l_shipdate") < end))
        .aggregate(
            by=["l_partkey", "l_suppkey"], half_qty=agg.sum(col("l_quantity"))
        )
        .project(
            sq_partkey="l_partkey",
            sq_suppkey="l_suppkey",
            qty_floor=0.5 * col("half_qty"),
        )
    )
    qualifying_ps = (
        Q(db)
        .scan("partsupp")
        .join(forest_parts, on=[("ps_partkey", "p_partkey")], how="semi")
        .join(shipped_qty, on=[("ps_partkey", "sq_partkey"), ("ps_suppkey", "sq_suppkey")])
        .filter(col("ps_availqty") > col("qty_floor"))
    )
    return (
        Q(db)
        .scan("supplier")
        .join(qualifying_ps, on=[("s_suppkey", "ps_suppkey")], how="semi")
        .join(
            Q(db).scan("nation").filter(col("n_name") == nation),
            on=[("s_nationkey", "n_nationkey")],
        )
        .project(s_name="s_name", s_address="s_address")
        .sort("s_name")
    )
