"""Q8 — National Market Share (conditional aggregation over two nation roles)."""

from repro.engine import Q, agg, case, col

from .base import revenue_expr

NAME = "National Market Share"
TABLES = ("part", "supplier", "lineitem", "orders", "customer", "nation", "region")


def build(db, params=None):
    p = params or {}
    nation = p.get("nation", "BRAZIL")
    region = p.get("region", "AMERICA")
    part_type = p.get("type", "ECONOMY ANODIZED STEEL")
    cust_nation = (
        Q(db).scan("nation").project(cn_key="n_nationkey", cn_region="n_regionkey")
    )
    supp_nation = (
        Q(db).scan("nation").project(sn_key="n_nationkey", supp_nation="n_name")
    )
    shares = (
        Q(db)
        .scan("part")
        .filter(col("p_type") == part_type)
        .join("lineitem", on=[("p_partkey", "l_partkey")])
        .join("supplier", on=[("l_suppkey", "s_suppkey")])
        .join(
            Q(db)
            .scan("orders")
            .filter(col("o_orderdate").between("1995-01-01", "1996-12-31")),
            on=[("l_orderkey", "o_orderkey")],
        )
        .join("customer", on=[("o_custkey", "c_custkey")])
        .join(cust_nation, on=[("c_nationkey", "cn_key")])
        .join(
            Q(db).scan("region").filter(col("r_name") == region),
            on=[("cn_region", "r_regionkey")],
        )
        .join(supp_nation, on=[("s_nationkey", "sn_key")])
        .project(
            o_year=col("o_orderdate").year(),
            volume=revenue_expr(),
            nation_volume=case(
                [(col("supp_nation") == nation, revenue_expr())], 0.0
            ),
        )
        .aggregate(
            by=["o_year"],
            nation_volume=agg.sum(col("nation_volume")),
            total_volume=agg.sum(col("volume")),
        )
    )
    return shares.project(
        o_year="o_year",
        mkt_share=col("nation_volume") / col("total_volume"),
    ).sort("o_year")
