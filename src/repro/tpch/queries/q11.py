"""Q11 — Important Stock Identification (HAVING against a scalar subquery).

No lineitem — a query where the paper found the Pi most competitive
(up to 0.5-0.7x of the servers).
"""

from repro.engine import Q, agg, col, scalar

NAME = "Important Stock Identification"
TABLES = ("partsupp", "supplier", "nation")


def _german_partsupp(db, nation):
    return (
        Q(db)
        .scan("partsupp")
        .join("supplier", on=[("ps_suppkey", "s_suppkey")])
        .join(
            Q(db).scan("nation").filter(col("n_name") == nation),
            on=[("s_nationkey", "n_nationkey")],
        )
    )


def build(db, params=None):
    p = params or {}
    nation = p.get("nation", "GERMANY")
    # Spec: FRACTION is 0.0001 / SF.
    fraction = p.get("fraction", 0.0001 / p.get("sf", 1.0))
    total = _german_partsupp(db, nation).aggregate(
        total=agg.sum(col("ps_supplycost") * col("ps_availqty"))
    )
    return (
        _german_partsupp(db, nation)
        .aggregate(
            by=["ps_partkey"],
            value=agg.sum(col("ps_supplycost") * col("ps_availqty")),
        )
        .filter(col("value") > scalar(total) * fraction)
        .sort(("value", "desc"))
    )
