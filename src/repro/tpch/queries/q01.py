"""Q1 — Pricing Summary Report.

Scans ~98% of lineitem; the paper's canonical memory-bound query (the
Raspberry Pi's worst case at SF 1, and the query whose cluster speedup
jumps once per-node data fits in cache).
"""

from repro.engine import Q, agg, col

NAME = "Pricing Summary Report"
TABLES = ("lineitem",)


def build(db, params=None):
    p = params or {}
    cutoff = p.get("date", "1998-09-02")  # 1998-12-01 minus 90 days
    disc_price = col("l_extendedprice") * (1.0 - col("l_discount"))
    charge = disc_price * (1.0 + col("l_tax"))
    return (
        Q(db)
        .scan("lineitem")
        .filter(col("l_shipdate") <= cutoff)
        .aggregate(
            by=["l_returnflag", "l_linestatus"],
            sum_qty=agg.sum(col("l_quantity")),
            sum_base_price=agg.sum(col("l_extendedprice")),
            sum_disc_price=agg.sum(disc_price),
            sum_charge=agg.sum(charge),
            avg_qty=agg.avg(col("l_quantity")),
            avg_price=agg.avg(col("l_extendedprice")),
            avg_disc=agg.avg(col("l_discount")),
            count_order=agg.count_star(),
        )
        .sort("l_returnflag", "l_linestatus")
    )
