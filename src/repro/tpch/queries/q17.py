"""Q17 — Small-Quantity-Order Revenue (correlated AVG via join)."""

from repro.engine import Q, agg, col

NAME = "Small-Quantity-Order Revenue"
TABLES = ("lineitem", "part")


def build(db, params=None):
    p = params or {}
    brand = p.get("brand", "Brand#23")
    container = p.get("container", "MED BOX")
    part_avg = (
        Q(db)
        .scan("lineitem")
        .aggregate(by=["l_partkey"], avg_qty=agg.avg(col("l_quantity")))
        .project(ap_partkey="l_partkey", qty_limit=0.2 * col("avg_qty"))
    )
    total = (
        Q(db)
        .scan("part")
        .filter((col("p_brand") == brand) & (col("p_container") == container))
        .join("lineitem", on=[("p_partkey", "l_partkey")])
        .join(part_avg, on=[("p_partkey", "ap_partkey")])
        .filter(col("l_quantity") < col("qty_limit"))
        .aggregate(total=agg.sum(col("l_extendedprice")))
    )
    return total.project(avg_yearly=col("total") / 7.0)
