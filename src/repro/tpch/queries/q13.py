"""Q13 — Customer Distribution (left outer join; no lineitem).

In the paper's WIMPI experiments this query runs on a single node for
every cluster size (lineitem is the only partitioned table), so its
runtime is flat at 103.6 s in Table III.
"""

from repro.engine import Q, agg, col

NAME = "Customer Distribution"
TABLES = ("customer", "orders")


def build(db, params=None):
    p = params or {}
    word1 = p.get("word1", "special")
    word2 = p.get("word2", "requests")
    orders = (
        Q(db)
        .scan("orders")
        .filter(col("o_comment").not_like(f"%{word1}%{word2}%"))
    )
    return (
        Q(db)
        .scan("customer")
        .join(orders, on=[("c_custkey", "o_custkey")], how="left")
        .aggregate(by=["c_custkey"], c_count=agg.count(col("o_orderkey")))
        .aggregate(by=["c_count"], custdist=agg.count_star())
        .sort(("custdist", "desc"), ("c_count", "desc"))
    )
