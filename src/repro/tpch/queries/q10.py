"""Q10 — Returned Item Reporting."""

from repro.engine import Q, agg, col

from .base import revenue_expr

NAME = "Returned Item Reporting"
TABLES = ("customer", "orders", "lineitem", "nation")


def build(db, params=None):
    p = params or {}
    start = p.get("date", "1993-10-01")
    end = p.get("date_end", "1994-01-01")
    return (
        Q(db)
        .scan("customer")
        .join(
            Q(db)
            .scan("orders")
            .filter((col("o_orderdate") >= start) & (col("o_orderdate") < end)),
            on=[("c_custkey", "o_custkey")],
        )
        .join(
            Q(db).scan("lineitem").filter(col("l_returnflag") == "R"),
            on=[("o_orderkey", "l_orderkey")],
        )
        .join("nation", on=[("c_nationkey", "n_nationkey")])
        .aggregate(
            by=[
                "c_custkey", "c_name", "c_acctbal", "c_phone",
                "n_name", "c_address", "c_comment",
            ],
            revenue=agg.sum(revenue_expr()),
        )
        .sort(("revenue", "desc"))
        .limit(20)
    )
