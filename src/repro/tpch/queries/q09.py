"""Q9 — Product Type Profit Measure (5-way join keyed on the partsupp pair)."""

from repro.engine import Q, agg, col

NAME = "Product Type Profit Measure"
TABLES = ("part", "supplier", "lineitem", "partsupp", "orders", "nation")


def build(db, params=None):
    p = params or {}
    color = p.get("color", "green")
    amount = (
        col("l_extendedprice") * (1.0 - col("l_discount"))
        - col("ps_supplycost") * col("l_quantity")
    )
    return (
        Q(db)
        .scan("part")
        .filter(col("p_name").like(f"%{color}%"))
        .join("lineitem", on=[("p_partkey", "l_partkey")])
        .join("supplier", on=[("l_suppkey", "s_suppkey")])
        .join(
            "partsupp",
            on=[("l_partkey", "ps_partkey"), ("l_suppkey", "ps_suppkey")],
        )
        .join("orders", on=[("l_orderkey", "o_orderkey")])
        .join("nation", on=[("s_nationkey", "n_nationkey")])
        .project(nation="n_name", o_year=col("o_orderdate").year(), amount=amount)
        .aggregate(by=["nation", "o_year"], sum_profit=agg.sum(col("amount")))
        .sort("nation", ("o_year", "desc"))
    )
