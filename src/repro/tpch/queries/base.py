"""Shared helpers for TPC-H query definitions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.engine import Database, Q

__all__ = ["QueryDef", "revenue_expr"]


@dataclass(frozen=True)
class QueryDef:
    """A TPC-H query: its number, plan builder, and metadata the
    distributed planner needs.

    Attributes:
        number: 1-22.
        name: the spec's query title.
        build: ``(db, params) -> Q`` plan builder; ``params`` always has
            at least ``sf`` (some predicates, e.g. Q11's HAVING fraction,
            are SF-dependent per the spec).
        uses_lineitem: whether the query touches the partitioned lineitem
            table (drives single-node fallback for Q13 in the cluster).
        tables: tables referenced, for partitioning/memory accounting.
    """

    number: int
    name: str
    build: Callable[[Database, dict], Q]
    uses_lineitem: bool
    tables: tuple[str, ...]


def revenue_expr():
    """The ubiquitous ``l_extendedprice * (1 - l_discount)``."""
    from repro.engine import col

    return col("l_extendedprice") * (1.0 - col("l_discount"))
