"""Q7 — Volume Shipping (two nation roles via projected nation scans)."""

from repro.engine import Q, agg, col

from .base import revenue_expr

NAME = "Volume Shipping"
TABLES = ("supplier", "lineitem", "orders", "customer", "nation")


def build(db, params=None):
    p = params or {}
    nation1 = p.get("nation1", "FRANCE")
    nation2 = p.get("nation2", "GERMANY")
    supp_nation = (
        Q(db).scan("nation").project(sn_key="n_nationkey", supp_nation="n_name")
    )
    cust_nation = (
        Q(db).scan("nation").project(cn_key="n_nationkey", cust_nation="n_name")
    )
    pair = (
        ((col("supp_nation") == nation1) & (col("cust_nation") == nation2))
        | ((col("supp_nation") == nation2) & (col("cust_nation") == nation1))
    )
    return (
        Q(db)
        .scan("supplier")
        .join(
            Q(db)
            .scan("lineitem")
            .filter(col("l_shipdate").between("1995-01-01", "1996-12-31")),
            on=[("s_suppkey", "l_suppkey")],
        )
        .join("orders", on=[("l_orderkey", "o_orderkey")])
        .join("customer", on=[("o_custkey", "c_custkey")])
        .join(supp_nation, on=[("s_nationkey", "sn_key")])
        .join(cust_nation, on=[("c_nationkey", "cn_key")])
        .filter(pair)
        .project(
            supp_nation="supp_nation",
            cust_nation="cust_nation",
            l_year=col("l_shipdate").year(),
            volume=revenue_expr(),
        )
        .aggregate(
            by=["supp_nation", "cust_nation", "l_year"],
            revenue=agg.sum(col("volume")),
        )
        .sort("supp_nation", "cust_nation", "l_year")
    )
