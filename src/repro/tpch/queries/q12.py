"""Q12 — Shipping Modes and Order Priority."""

from repro.engine import Q, agg, case, col

NAME = "Shipping Modes and Order Priority"
TABLES = ("orders", "lineitem")


def build(db, params=None):
    p = params or {}
    modes = p.get("modes", ["MAIL", "SHIP"])
    start = p.get("date", "1994-01-01")
    end = p.get("date_end", "1995-01-01")
    high = col("o_orderpriority").isin(["1-URGENT", "2-HIGH"])
    return (
        Q(db)
        .scan("orders")
        .join(
            Q(db)
            .scan("lineitem")
            .filter(
                col("l_shipmode").isin(modes)
                & (col("l_commitdate") < col("l_receiptdate"))
                & (col("l_shipdate") < col("l_commitdate"))
                & (col("l_receiptdate") >= start)
                & (col("l_receiptdate") < end)
            ),
            on=[("o_orderkey", "l_orderkey")],
        )
        .project(
            l_shipmode="l_shipmode",
            high_line=case([(high, 1.0)], 0.0),
            low_line=case([(high, 0.0)], 1.0),
        )
        .aggregate(
            by=["l_shipmode"],
            high_line_count=agg.sum(col("high_line")),
            low_line_count=agg.sum(col("low_line")),
        )
        .sort("l_shipmode")
    )
