"""Q18 — Large Volume Customer (HAVING subquery via semi join)."""

from repro.engine import Q, agg, col

NAME = "Large Volume Customer"
TABLES = ("customer", "orders", "lineitem")


def build(db, params=None):
    p = params or {}
    quantity = p.get("quantity", 300)
    big_orders = (
        Q(db)
        .scan("lineitem")
        .aggregate(by=["l_orderkey"], total_qty=agg.sum(col("l_quantity")))
        .filter(col("total_qty") > quantity)
        .project(big_orderkey="l_orderkey")
    )
    return (
        Q(db)
        .scan("customer")
        .join("orders", on=[("c_custkey", "o_custkey")])
        .join(big_orders, on=[("o_orderkey", "big_orderkey")], how="semi")
        .join("lineitem", on=[("o_orderkey", "l_orderkey")])
        .aggregate(
            by=["c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice"],
            sum_qty=agg.sum(col("l_quantity")),
        )
        .sort(("o_totalprice", "desc"), "o_orderdate")
        .limit(100)
    )
