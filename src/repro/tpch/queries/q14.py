"""Q14 — Promotion Effect (conditional aggregation with LIKE)."""

from repro.engine import Q, agg, case, col

from .base import revenue_expr

NAME = "Promotion Effect"
TABLES = ("lineitem", "part")


def build(db, params=None):
    p = params or {}
    start = p.get("date", "1995-09-01")
    end = p.get("date_end", "1995-10-01")
    sums = (
        Q(db)
        .scan("lineitem")
        .filter((col("l_shipdate") >= start) & (col("l_shipdate") < end))
        .join("part", on=[("l_partkey", "p_partkey")])
        .project(
            promo=case([(col("p_type").like("PROMO%"), revenue_expr())], 0.0),
            total=revenue_expr(),
        )
        .aggregate(promo=agg.sum(col("promo")), total=agg.sum(col("total")))
    )
    return sums.project(promo_revenue=100.0 * col("promo") / col("total"))
