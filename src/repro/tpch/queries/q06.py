"""Q6 — Forecasting Revenue Change.

Highly selective single-table scan: the paper's best case for the Pi's
energy efficiency (CPU-light, bandwidth-light).
"""

from repro.engine import Q, agg, col

NAME = "Forecasting Revenue Change"
TABLES = ("lineitem",)


def build(db, params=None):
    p = params or {}
    start = p.get("date", "1994-01-01")
    end = p.get("date_end", "1995-01-01")
    discount = p.get("discount", 0.06)
    quantity = p.get("quantity", 24)
    return (
        Q(db)
        .scan("lineitem")
        .filter(
            (col("l_shipdate") >= start)
            & (col("l_shipdate") < end)
            & col("l_discount").between(discount - 0.011, discount + 0.011)
            & (col("l_quantity") < quantity)
        )
        .aggregate(revenue=agg.sum(col("l_extendedprice") * col("l_discount")))
    )
