"""Q19 — Discounted Revenue (disjunction of composite predicates)."""

from repro.engine import Q, agg, col

from .base import revenue_expr

NAME = "Discounted Revenue"
TABLES = ("lineitem", "part")


def build(db, params=None):
    p = params or {}
    q1 = p.get("quantity1", 1)
    q2 = p.get("quantity2", 10)
    q3 = p.get("quantity3", 20)
    brand1 = p.get("brand1", "Brand#12")
    brand2 = p.get("brand2", "Brand#23")
    brand3 = p.get("brand3", "Brand#34")

    clause1 = (
        (col("p_brand") == brand1)
        & col("p_container").isin(["SM CASE", "SM BOX", "SM PACK", "SM PKG"])
        & col("l_quantity").between(q1, q1 + 10)
        & col("p_size").between(1, 5)
    )
    clause2 = (
        (col("p_brand") == brand2)
        & col("p_container").isin(["MED BAG", "MED BOX", "MED PKG", "MED PACK"])
        & col("l_quantity").between(q2, q2 + 10)
        & col("p_size").between(1, 10)
    )
    clause3 = (
        (col("p_brand") == brand3)
        & col("p_container").isin(["LG CASE", "LG BOX", "LG PACK", "LG PKG"])
        & col("l_quantity").between(q3, q3 + 10)
        & col("p_size").between(1, 15)
    )
    common = col("l_shipmode").isin(["AIR", "AIR REG"]) & (
        col("l_shipinstruct") == "DELIVER IN PERSON"
    )
    return (
        Q(db)
        .scan("lineitem")
        .filter(common)
        .join("part", on=[("l_partkey", "p_partkey")])
        .filter(clause1 | clause2 | clause3)
        .aggregate(revenue=agg.sum(revenue_expr()))
    )
