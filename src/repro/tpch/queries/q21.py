"""Q21 — Suppliers Who Kept Orders Waiting.

The EXISTS / NOT EXISTS pair over other suppliers' lineitems is expressed
relationally: an order qualifies when it has >= 2 distinct suppliers
overall but exactly 1 distinct supplier among its late lines (necessarily
the waiting supplier itself).
"""

from repro.engine import Q, agg, col

NAME = "Suppliers Who Kept Orders Waiting"
TABLES = ("supplier", "lineitem", "orders", "nation")


def build(db, params=None):
    p = params or {}
    nation = p.get("nation", "SAUDI ARABIA")

    late = col("l_receiptdate") > col("l_commitdate")
    multi_supplier_orders = (
        Q(db)
        .scan("lineitem")
        .aggregate(by=["l_orderkey"], n_supp=agg.count_distinct(col("l_suppkey")))
        .filter(col("n_supp") >= 2)
        .project(ms_orderkey="l_orderkey")
    )
    single_late_supplier_orders = (
        Q(db)
        .scan("lineitem")
        .filter(late)
        .aggregate(by=["l_orderkey"], n_late=agg.count_distinct(col("l_suppkey")))
        .filter(col("n_late") == 1)
        .project(sl_orderkey="l_orderkey")
    )
    return (
        Q(db)
        .scan("supplier")
        .join(
            Q(db).scan("lineitem").filter(late),
            on=[("s_suppkey", "l_suppkey")],
        )
        .join(
            Q(db).scan("orders").filter(col("o_orderstatus") == "F"),
            on=[("l_orderkey", "o_orderkey")],
        )
        .join(multi_supplier_orders, on=[("l_orderkey", "ms_orderkey")], how="semi")
        .join(single_late_supplier_orders, on=[("l_orderkey", "sl_orderkey")], how="semi")
        .join(
            Q(db).scan("nation").filter(col("n_name") == nation),
            on=[("s_nationkey", "n_nationkey")],
        )
        .aggregate(by=["s_name"], numwait=agg.count_star())
        .sort(("numwait", "desc"), "s_name")
        .limit(100)
    )
