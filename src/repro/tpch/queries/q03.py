"""Q3 — Shipping Priority."""

from repro.engine import Q, agg, col

from .base import revenue_expr

NAME = "Shipping Priority"
TABLES = ("customer", "orders", "lineitem")


def build(db, params=None):
    p = params or {}
    segment = p.get("segment", "BUILDING")
    date = p.get("date", "1995-03-15")
    return (
        Q(db)
        .scan("customer")
        .filter(col("c_mktsegment") == segment)
        .join(
            Q(db).scan("orders").filter(col("o_orderdate") < date),
            on=[("c_custkey", "o_custkey")],
        )
        .join(
            Q(db).scan("lineitem").filter(col("l_shipdate") > date),
            on=[("o_orderkey", "l_orderkey")],
        )
        .aggregate(
            by=["l_orderkey", "o_orderdate", "o_shippriority"],
            revenue=agg.sum(revenue_expr()),
        )
        .sort(("revenue", "desc"), "o_orderdate")
        .limit(10)
    )
