"""Q15 — Top Supplier (view + scalar MAX subquery)."""

from repro.engine import Q, agg, col, scalar

from .base import revenue_expr

NAME = "Top Supplier"
TABLES = ("supplier", "lineitem")


def _revenue_view(db, start, end):
    return (
        Q(db)
        .scan("lineitem")
        .filter((col("l_shipdate") >= start) & (col("l_shipdate") < end))
        .aggregate(by=["l_suppkey"], total_revenue=agg.sum(revenue_expr()))
    )


def build(db, params=None):
    p = params or {}
    start = p.get("date", "1996-01-01")
    end = p.get("date_end", "1996-04-01")
    view = _revenue_view(db, start, end)
    max_revenue = _revenue_view(db, start, end).aggregate(
        mr=agg.max(col("total_revenue"))
    )
    return (
        Q(db)
        .scan("supplier")
        .join(view, on=[("s_suppkey", "l_suppkey")])
        .filter(col("total_revenue") >= scalar(max_revenue))
        .project(
            s_suppkey="s_suppkey",
            s_name="s_name",
            s_address="s_address",
            s_phone="s_phone",
            total_revenue="total_revenue",
        )
        .sort("s_suppkey")
    )
