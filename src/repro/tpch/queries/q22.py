"""Q22 — Global Sales Opportunity (substring country codes, scalar AVG,
NOT EXISTS via anti join; no lineitem)."""

from repro.engine import Q, agg, col, scalar

NAME = "Global Sales Opportunity"
TABLES = ("customer", "orders")


def build(db, params=None):
    p = params or {}
    codes = p.get("codes", ["13", "31", "23", "29", "30", "18", "17"])
    cntrycode = col("c_phone").substring(1, 2)
    avg_balance = (
        Q(db)
        .scan("customer")
        .filter((col("c_acctbal") > 0.0) & cntrycode.isin(codes))
        .aggregate(ab=agg.avg(col("c_acctbal")))
    )
    return (
        Q(db)
        .scan("customer")
        .filter(cntrycode.isin(codes))
        .filter(col("c_acctbal") > scalar(avg_balance))
        .join("orders", on=[("c_custkey", "o_custkey")], how="anti")
        .project(cntrycode=cntrycode, c_acctbal="c_acctbal")
        .aggregate(
            by=["cntrycode"],
            numcust=agg.count_star(),
            totacctbal=agg.sum(col("c_acctbal")),
        )
        .sort("cntrycode")
    )
