"""All 22 TPC-H queries as SQL text (for the engine's SQL front-end).

The spec's queries, written in the engine's dialect. Correlated
subqueries (Q2, Q17, Q20), ``EXISTS`` (Q4, Q22), ``IN (SELECT ...)``
(Q16, Q18, Q20, Q21), scalar subqueries (Q11, Q15, Q22), and derived
tables (Q7, Q8, Q13, Q15, Q22) all go through the SQL front-end's
decorrelation and semi/anti-join lowering. Q21's spec EXISTS/NOT EXISTS
pair needs a non-equality correlation the dialect doesn't decorrelate,
so its text uses the equivalent relational form (an order qualifies when
it has >= 2 distinct suppliers overall but fewer than 2 among its late
lines).

Q11's spec FRACTION depends on the scale factor, so its text carries a
``{fraction}`` placeholder; :func:`sql_text` substitutes it using the
same defaulting rule as the builder.

Each text is validated against its builder plan by
``tests/tpch/test_sqltext.py``.
"""

from __future__ import annotations

from repro.engine import Database, Q
from repro.engine.sql import sql

__all__ = ["SQL_QUERIES", "build_from_sql", "sql_text", "SQL_QUERY_NUMBERS"]

SQL_QUERIES: dict[int, str] = {
    1: """
        SELECT l_returnflag, l_linestatus,
               SUM(l_quantity) AS sum_qty,
               SUM(l_extendedprice) AS sum_base_price,
               SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
               SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
               AVG(l_quantity) AS avg_qty,
               AVG(l_extendedprice) AS avg_price,
               AVG(l_discount) AS avg_disc,
               COUNT(*) AS count_order
        FROM lineitem
        WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
        GROUP BY l_returnflag, l_linestatus
        ORDER BY l_returnflag, l_linestatus
    """,
    3: """
        SELECT l_orderkey, o_orderdate, o_shippriority,
               SUM(l_extendedprice * (1 - l_discount)) AS revenue
        FROM customer
        JOIN orders ON c_custkey = o_custkey
        JOIN lineitem ON o_orderkey = l_orderkey
        WHERE c_mktsegment = 'BUILDING'
          AND o_orderdate < DATE '1995-03-15'
          AND l_shipdate > DATE '1995-03-15'
        GROUP BY l_orderkey, o_orderdate, o_shippriority
        ORDER BY revenue DESC, o_orderdate
        LIMIT 10
    """,
    2: """
        SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address,
               s_phone, s_comment
        FROM part
        JOIN partsupp ON p_partkey = ps_partkey
        JOIN supplier ON ps_suppkey = s_suppkey
        JOIN nation ON s_nationkey = n_nationkey
        JOIN region ON n_regionkey = r_regionkey
        WHERE p_size = 15
          AND p_type LIKE '%BRASS'
          AND r_name = 'EUROPE'
          AND ps_supplycost = (
              SELECT MIN(ps_supplycost)
              FROM partsupp
              JOIN supplier ON ps_suppkey = s_suppkey
              JOIN nation ON s_nationkey = n_nationkey
              JOIN region ON n_regionkey = r_regionkey
              WHERE r_name = 'EUROPE'
                AND ps_partkey = p_partkey)
        ORDER BY s_acctbal DESC, n_name, s_name, p_partkey
        LIMIT 100
    """,
    4: """
        SELECT o_orderpriority, COUNT(*) AS order_count
        FROM orders
        WHERE o_orderdate >= DATE '1993-07-01'
          AND o_orderdate < DATE '1993-07-01' + INTERVAL '3' MONTH
          AND EXISTS (
              SELECT * FROM lineitem
              WHERE l_orderkey = o_orderkey
                AND l_commitdate < l_receiptdate)
        GROUP BY o_orderpriority
        ORDER BY o_orderpriority
    """,
    5: """
        SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
        FROM customer
        JOIN orders ON c_custkey = o_custkey
        JOIN lineitem ON o_orderkey = l_orderkey
        JOIN supplier ON l_suppkey = s_suppkey AND c_nationkey = s_nationkey
        JOIN nation ON c_nationkey = n_nationkey
        JOIN region ON n_regionkey = r_regionkey
        WHERE r_name = 'ASIA'
          AND o_orderdate >= DATE '1994-01-01'
          AND o_orderdate < DATE '1994-01-01' + INTERVAL '1' YEAR
        GROUP BY n_name
        ORDER BY revenue DESC
    """,
    6: """
        SELECT SUM(l_extendedprice * l_discount) AS revenue
        FROM lineitem
        WHERE l_shipdate >= DATE '1994-01-01'
          AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR
          AND l_discount BETWEEN 0.049 AND 0.071
          AND l_quantity < 24
    """,
    7: """
        SELECT supp_nation, cust_nation,
               EXTRACT(YEAR FROM l_shipdate) AS l_year,
               SUM(l_extendedprice * (1 - l_discount)) AS revenue
        FROM supplier
        JOIN lineitem ON s_suppkey = l_suppkey
        JOIN orders ON l_orderkey = o_orderkey
        JOIN customer ON o_custkey = c_custkey
        JOIN (SELECT n_nationkey AS sn_key, n_name AS supp_nation
              FROM nation) AS n1 ON s_nationkey = sn_key
        JOIN (SELECT n_nationkey AS cn_key, n_name AS cust_nation
              FROM nation) AS n2 ON c_nationkey = cn_key
        WHERE l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
          AND ((supp_nation = 'FRANCE' AND cust_nation = 'GERMANY')
            OR (supp_nation = 'GERMANY' AND cust_nation = 'FRANCE'))
        GROUP BY supp_nation, cust_nation, l_year
        ORDER BY supp_nation, cust_nation, l_year
    """,
    8: """
        SELECT EXTRACT(YEAR FROM o_orderdate) AS o_year,
               SUM(CASE WHEN supp_nation = 'BRAZIL'
                        THEN l_extendedprice * (1 - l_discount)
                        ELSE 0 END)
               / SUM(l_extendedprice * (1 - l_discount)) AS mkt_share
        FROM part
        JOIN lineitem ON p_partkey = l_partkey
        JOIN supplier ON l_suppkey = s_suppkey
        JOIN orders ON l_orderkey = o_orderkey
        JOIN customer ON o_custkey = c_custkey
        JOIN (SELECT n_nationkey AS cn_key, n_regionkey AS cn_region
              FROM nation) AS n1 ON c_nationkey = cn_key
        JOIN region ON cn_region = r_regionkey
        JOIN (SELECT n_nationkey AS sn_key, n_name AS supp_nation
              FROM nation) AS n2 ON s_nationkey = sn_key
        WHERE p_type = 'ECONOMY ANODIZED STEEL'
          AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
          AND r_name = 'AMERICA'
        GROUP BY o_year
        ORDER BY o_year
    """,
    9: """
        SELECT nation, o_year, SUM(amount) AS sum_profit
        FROM (
            SELECT n_name AS nation,
                   EXTRACT(YEAR FROM o_orderdate) AS o_year,
                   l_extendedprice * (1 - l_discount)
                     - ps_supplycost * l_quantity AS amount
            FROM part
            JOIN lineitem ON p_partkey = l_partkey
            JOIN supplier ON l_suppkey = s_suppkey
            JOIN partsupp ON l_partkey = ps_partkey AND l_suppkey = ps_suppkey
            JOIN orders ON l_orderkey = o_orderkey
            JOIN nation ON s_nationkey = n_nationkey
            WHERE p_name LIKE '%green%'
        ) AS profit
        GROUP BY nation, o_year
        ORDER BY nation, o_year DESC
    """,
    10: """
        SELECT c_custkey, c_name, c_acctbal, c_phone, n_name, c_address,
               c_comment,
               SUM(l_extendedprice * (1 - l_discount)) AS revenue
        FROM customer
        JOIN orders ON c_custkey = o_custkey
        JOIN lineitem ON o_orderkey = l_orderkey
        JOIN nation ON c_nationkey = n_nationkey
        WHERE o_orderdate >= DATE '1993-10-01'
          AND o_orderdate < DATE '1993-10-01' + INTERVAL '3' MONTH
          AND l_returnflag = 'R'
        GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address,
                 c_comment
        ORDER BY revenue DESC
        LIMIT 20
    """,
    11: """
        SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value
        FROM partsupp
        JOIN supplier ON ps_suppkey = s_suppkey
        JOIN nation ON s_nationkey = n_nationkey
        WHERE n_name = 'GERMANY'
        GROUP BY ps_partkey
        HAVING value > (
            SELECT SUM(ps_supplycost * ps_availqty) * {fraction}
            FROM partsupp
            JOIN supplier ON ps_suppkey = s_suppkey
            JOIN nation ON s_nationkey = n_nationkey
            WHERE n_name = 'GERMANY')
        ORDER BY value DESC
    """,
    12: """
        SELECT l_shipmode,
               SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH')
                        THEN 1 ELSE 0 END) AS high_line_count,
               SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH')
                        THEN 0 ELSE 1 END) AS low_line_count
        FROM orders
        JOIN lineitem ON o_orderkey = l_orderkey
        WHERE l_shipmode IN ('MAIL', 'SHIP')
          AND l_commitdate < l_receiptdate
          AND l_shipdate < l_commitdate
          AND l_receiptdate >= DATE '1994-01-01'
          AND l_receiptdate < DATE '1994-01-01' + INTERVAL '1' YEAR
        GROUP BY l_shipmode
        ORDER BY l_shipmode
    """,
    13: """
        SELECT c_count, COUNT(*) AS custdist
        FROM (
            SELECT c_custkey, COUNT(o_orderkey) AS c_count
            FROM customer
            LEFT JOIN (SELECT o_orderkey, o_custkey FROM orders
                       WHERE o_comment NOT LIKE '%special%requests%') AS o
              ON c_custkey = o_custkey
            GROUP BY c_custkey
        ) AS c_orders
        GROUP BY c_count
        ORDER BY custdist DESC, c_count DESC
    """,
    14: """
        SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%'
                                 THEN l_extendedprice * (1 - l_discount)
                                 ELSE 0 END)
               / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
        FROM lineitem
        JOIN part ON l_partkey = p_partkey
        WHERE l_shipdate >= DATE '1995-09-01'
          AND l_shipdate < DATE '1995-09-01' + INTERVAL '1' MONTH
    """,
    15: """
        SELECT s_suppkey, s_name, s_address, s_phone, total_revenue
        FROM supplier
        JOIN (SELECT l_suppkey,
                     SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
              FROM lineitem
              WHERE l_shipdate >= DATE '1996-01-01'
                AND l_shipdate < DATE '1996-04-01'
              GROUP BY l_suppkey) AS revenue
          ON s_suppkey = l_suppkey
        WHERE total_revenue >= (
            SELECT MAX(total_revenue)
            FROM (SELECT l_suppkey,
                         SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
                  FROM lineitem
                  WHERE l_shipdate >= DATE '1996-01-01'
                    AND l_shipdate < DATE '1996-04-01'
                  GROUP BY l_suppkey) AS r)
        ORDER BY s_suppkey
    """,
    16: """
        SELECT p_brand, p_type, p_size,
               COUNT(DISTINCT ps_suppkey) AS supplier_cnt
        FROM partsupp
        JOIN part ON ps_partkey = p_partkey
        WHERE p_brand <> 'Brand#45'
          AND p_type NOT LIKE 'MEDIUM POLISHED%'
          AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9)
          AND ps_suppkey NOT IN (
              SELECT s_suppkey FROM supplier
              WHERE s_comment LIKE '%Customer%Complaints%')
        GROUP BY p_brand, p_type, p_size
        ORDER BY supplier_cnt DESC, p_brand, p_type, p_size
    """,
    17: """
        SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly
        FROM lineitem
        JOIN part ON l_partkey = p_partkey
        WHERE p_brand = 'Brand#23'
          AND p_container = 'MED BOX'
          AND l_quantity < (
              SELECT 0.2 * AVG(l_quantity)
              FROM lineitem
              WHERE l_partkey = p_partkey)
    """,
    18: """
        SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
               SUM(l_quantity) AS sum_qty
        FROM customer
        JOIN orders ON c_custkey = o_custkey
        JOIN lineitem ON o_orderkey = l_orderkey
        WHERE o_orderkey IN (
            SELECT l_orderkey FROM lineitem
            GROUP BY l_orderkey
            HAVING SUM(l_quantity) > 300)
        GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
        ORDER BY o_totalprice DESC, o_orderdate
        LIMIT 100
    """,
    19: """
        SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
        FROM lineitem
        JOIN part ON l_partkey = p_partkey
        WHERE l_shipmode IN ('AIR', 'AIR REG')
          AND l_shipinstruct = 'DELIVER IN PERSON'
          AND ((p_brand = 'Brand#12'
                AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
                AND l_quantity BETWEEN 1 AND 11 AND p_size BETWEEN 1 AND 5)
            OR (p_brand = 'Brand#23'
                AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
                AND l_quantity BETWEEN 10 AND 20 AND p_size BETWEEN 1 AND 10)
            OR (p_brand = 'Brand#34'
                AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
                AND l_quantity BETWEEN 20 AND 30 AND p_size BETWEEN 1 AND 15))
    """,
    20: """
        SELECT s_name, s_address
        FROM supplier
        JOIN nation ON s_nationkey = n_nationkey
        WHERE n_name = 'CANADA'
          AND s_suppkey IN (
              SELECT ps_suppkey
              FROM partsupp
              WHERE ps_partkey IN (
                    SELECT p_partkey FROM part WHERE p_name LIKE 'forest%')
                AND ps_availqty > (
                    SELECT 0.5 * SUM(l_quantity)
                    FROM lineitem
                    WHERE l_shipdate >= DATE '1994-01-01'
                      AND l_shipdate < DATE '1995-01-01'
                      AND l_partkey = ps_partkey
                      AND l_suppkey = ps_suppkey))
        ORDER BY s_name
    """,
    21: """
        SELECT s_name, COUNT(*) AS numwait
        FROM supplier
        JOIN lineitem ON s_suppkey = l_suppkey
        JOIN orders ON l_orderkey = o_orderkey
        JOIN nation ON s_nationkey = n_nationkey
        WHERE o_orderstatus = 'F'
          AND n_name = 'SAUDI ARABIA'
          AND l_receiptdate > l_commitdate
          AND l_orderkey IN (
              SELECT l_orderkey FROM lineitem
              GROUP BY l_orderkey
              HAVING COUNT(DISTINCT l_suppkey) >= 2)
          AND l_orderkey NOT IN (
              SELECT l_orderkey FROM lineitem
              WHERE l_receiptdate > l_commitdate
              GROUP BY l_orderkey
              HAVING COUNT(DISTINCT l_suppkey) >= 2)
        GROUP BY s_name
        ORDER BY numwait DESC, s_name
        LIMIT 100
    """,
    22: """
        SELECT cntrycode, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal
        FROM (
            SELECT SUBSTRING(c_phone FROM 1 FOR 2) AS cntrycode, c_acctbal
            FROM customer
            WHERE SUBSTRING(c_phone FROM 1 FOR 2)
                    IN ('13', '31', '23', '29', '30', '18', '17')
              AND c_acctbal > (
                  SELECT AVG(c_acctbal) FROM customer
                  WHERE c_acctbal > 0.0
                    AND SUBSTRING(c_phone FROM 1 FOR 2)
                          IN ('13', '31', '23', '29', '30', '18', '17'))
              AND NOT EXISTS (
                  SELECT * FROM orders WHERE o_custkey = c_custkey)
        ) AS custsale
        GROUP BY cntrycode
        ORDER BY cntrycode
    """,
}

SQL_QUERY_NUMBERS = tuple(sorted(SQL_QUERIES))


def sql_text(number: int, params: dict | None = None) -> str:
    """The SQL text for query ``number`` with substitution parameters
    applied (only Q11's scale-dependent FRACTION needs one)."""
    try:
        text = SQL_QUERIES[number]
    except KeyError:
        raise KeyError(
            f"Q{number} has no SQL text in this dialect; use "
            f"repro.tpch.get_query({number}).build(...) instead"
        ) from None
    if number == 11:
        p = params or {}
        fraction = p.get("fraction", 0.0001 / p.get("sf", 1.0))
        text = text.format(fraction=repr(float(fraction)))
    return text


def build_from_sql(db: Database, number: int, params: dict | None = None) -> Q:
    """Plan a TPC-H query from its SQL text."""
    return sql(db, sql_text(number, params))
