"""TPC-H queries as SQL text (for the engine's SQL front-end).

The spec's queries, written in the subset our dialect supports. Queries
whose spec formulation needs correlated subqueries, views, or EXISTS
(Q2, Q11, Q15-Q18, Q20-Q22) have no SQL text here — the builder plans in
:mod:`repro.tpch.queries` remain the reference implementations for those;
``build_from_sql`` raises :class:`KeyError` for them.

Each text is validated against its builder plan by
``tests/tpch/test_sqltext.py``.
"""

from __future__ import annotations

from repro.engine import Database, Q
from repro.engine.sql import sql

__all__ = ["SQL_QUERIES", "build_from_sql", "SQL_QUERY_NUMBERS"]

SQL_QUERIES: dict[int, str] = {
    1: """
        SELECT l_returnflag, l_linestatus,
               SUM(l_quantity) AS sum_qty,
               SUM(l_extendedprice) AS sum_base_price,
               SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
               SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
               AVG(l_quantity) AS avg_qty,
               AVG(l_extendedprice) AS avg_price,
               AVG(l_discount) AS avg_disc,
               COUNT(*) AS count_order
        FROM lineitem
        WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
        GROUP BY l_returnflag, l_linestatus
        ORDER BY l_returnflag, l_linestatus
    """,
    3: """
        SELECT l_orderkey, o_orderdate, o_shippriority,
               SUM(l_extendedprice * (1 - l_discount)) AS revenue
        FROM customer
        JOIN orders ON c_custkey = o_custkey
        JOIN lineitem ON o_orderkey = l_orderkey
        WHERE c_mktsegment = 'BUILDING'
          AND o_orderdate < DATE '1995-03-15'
          AND l_shipdate > DATE '1995-03-15'
        GROUP BY l_orderkey, o_orderdate, o_shippriority
        ORDER BY revenue DESC, o_orderdate
        LIMIT 10
    """,
    4: """
        SELECT o_orderpriority, COUNT(*) AS order_count
        FROM orders
        WHERE o_orderdate >= DATE '1993-07-01'
          AND o_orderdate < DATE '1993-07-01' + INTERVAL '3' MONTH
          AND o_orderkey IN (
              SELECT l_orderkey FROM lineitem
              WHERE l_commitdate < l_receiptdate)
        GROUP BY o_orderpriority
        ORDER BY o_orderpriority
    """,
    5: """
        SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
        FROM customer
        JOIN orders ON c_custkey = o_custkey
        JOIN lineitem ON o_orderkey = l_orderkey
        JOIN supplier ON l_suppkey = s_suppkey AND c_nationkey = s_nationkey
        JOIN nation ON c_nationkey = n_nationkey
        JOIN region ON n_regionkey = r_regionkey
        WHERE r_name = 'ASIA'
          AND o_orderdate >= DATE '1994-01-01'
          AND o_orderdate < DATE '1994-01-01' + INTERVAL '1' YEAR
        GROUP BY n_name
        ORDER BY revenue DESC
    """,
    6: """
        SELECT SUM(l_extendedprice * l_discount) AS revenue
        FROM lineitem
        WHERE l_shipdate >= DATE '1994-01-01'
          AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR
          AND l_discount BETWEEN 0.049 AND 0.071
          AND l_quantity < 24
    """,
    10: """
        SELECT c_custkey, c_name, c_acctbal, c_phone, n_name, c_address,
               c_comment,
               SUM(l_extendedprice * (1 - l_discount)) AS revenue
        FROM customer
        JOIN orders ON c_custkey = o_custkey
        JOIN lineitem ON o_orderkey = l_orderkey
        JOIN nation ON c_nationkey = n_nationkey
        WHERE o_orderdate >= DATE '1993-10-01'
          AND o_orderdate < DATE '1993-10-01' + INTERVAL '3' MONTH
          AND l_returnflag = 'R'
        GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address,
                 c_comment
        ORDER BY revenue DESC
        LIMIT 20
    """,
    12: """
        SELECT l_shipmode,
               SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH')
                        THEN 1 ELSE 0 END) AS high_line_count,
               SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH')
                        THEN 0 ELSE 1 END) AS low_line_count
        FROM orders
        JOIN lineitem ON o_orderkey = l_orderkey
        WHERE l_shipmode IN ('MAIL', 'SHIP')
          AND l_commitdate < l_receiptdate
          AND l_shipdate < l_commitdate
          AND l_receiptdate >= DATE '1994-01-01'
          AND l_receiptdate < DATE '1994-01-01' + INTERVAL '1' YEAR
        GROUP BY l_shipmode
        ORDER BY l_shipmode
    """,
    13: """
        SELECT c_count, COUNT(*) AS custdist
        FROM (
            SELECT c_custkey, COUNT(o_orderkey) AS c_count
            FROM customer
            LEFT JOIN (SELECT o_orderkey, o_custkey FROM orders
                       WHERE o_comment NOT LIKE '%special%requests%') AS o
              ON c_custkey = o_custkey
            GROUP BY c_custkey
        ) AS c_orders
        GROUP BY c_count
        ORDER BY custdist DESC, c_count DESC
    """,
    14: """
        SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%'
                                 THEN l_extendedprice * (1 - l_discount)
                                 ELSE 0 END)
               / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
        FROM lineitem
        JOIN part ON l_partkey = p_partkey
        WHERE l_shipdate >= DATE '1995-09-01'
          AND l_shipdate < DATE '1995-09-01' + INTERVAL '1' MONTH
    """,
    19: """
        SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
        FROM lineitem
        JOIN part ON l_partkey = p_partkey
        WHERE l_shipmode IN ('AIR', 'AIR REG')
          AND l_shipinstruct = 'DELIVER IN PERSON'
          AND ((p_brand = 'Brand#12'
                AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
                AND l_quantity BETWEEN 1 AND 11 AND p_size BETWEEN 1 AND 5)
            OR (p_brand = 'Brand#23'
                AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
                AND l_quantity BETWEEN 10 AND 20 AND p_size BETWEEN 1 AND 10)
            OR (p_brand = 'Brand#34'
                AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
                AND l_quantity BETWEEN 20 AND 30 AND p_size BETWEEN 1 AND 15))
    """,
}

SQL_QUERY_NUMBERS = tuple(sorted(SQL_QUERIES))


def build_from_sql(db: Database, number: int) -> Q:
    """Plan a TPC-H query from its SQL text (subset of queries only —
    see module docstring)."""
    try:
        text = SQL_QUERIES[number]
    except KeyError:
        raise KeyError(
            f"Q{number} has no SQL text in this dialect; use "
            f"repro.tpch.get_query({number}).build(...) instead"
        ) from None
    return sql(db, text)
