"""TPC-H table schemas (all 8 tables) and nominal cardinalities."""

from __future__ import annotations

from repro.engine import DATE, FLOAT64, INT64, STRING, Schema

__all__ = ["TPCH_SCHEMAS", "BASE_ROWS", "rows_at_sf", "TABLE_NAMES"]

TPCH_SCHEMAS: dict[str, Schema] = {
    "region": Schema.of(
        ("r_regionkey", INT64),
        ("r_name", STRING),
        ("r_comment", STRING),
    ),
    "nation": Schema.of(
        ("n_nationkey", INT64),
        ("n_name", STRING),
        ("n_regionkey", INT64),
        ("n_comment", STRING),
    ),
    "supplier": Schema.of(
        ("s_suppkey", INT64),
        ("s_name", STRING),
        ("s_address", STRING),
        ("s_nationkey", INT64),
        ("s_phone", STRING),
        ("s_acctbal", FLOAT64),
        ("s_comment", STRING),
    ),
    "part": Schema.of(
        ("p_partkey", INT64),
        ("p_name", STRING),
        ("p_mfgr", STRING),
        ("p_brand", STRING),
        ("p_type", STRING),
        ("p_size", INT64),
        ("p_container", STRING),
        ("p_retailprice", FLOAT64),
        ("p_comment", STRING),
    ),
    "partsupp": Schema.of(
        ("ps_partkey", INT64),
        ("ps_suppkey", INT64),
        ("ps_availqty", INT64),
        ("ps_supplycost", FLOAT64),
        ("ps_comment", STRING),
    ),
    "customer": Schema.of(
        ("c_custkey", INT64),
        ("c_name", STRING),
        ("c_address", STRING),
        ("c_nationkey", INT64),
        ("c_phone", STRING),
        ("c_acctbal", FLOAT64),
        ("c_mktsegment", STRING),
        ("c_comment", STRING),
    ),
    "orders": Schema.of(
        ("o_orderkey", INT64),
        ("o_custkey", INT64),
        ("o_orderstatus", STRING),
        ("o_totalprice", FLOAT64),
        ("o_orderdate", DATE),
        ("o_orderpriority", STRING),
        ("o_clerk", STRING),
        ("o_shippriority", INT64),
        ("o_comment", STRING),
    ),
    "lineitem": Schema.of(
        ("l_orderkey", INT64),
        ("l_partkey", INT64),
        ("l_suppkey", INT64),
        ("l_linenumber", INT64),
        ("l_quantity", FLOAT64),
        ("l_extendedprice", FLOAT64),
        ("l_discount", FLOAT64),
        ("l_tax", FLOAT64),
        ("l_returnflag", STRING),
        ("l_linestatus", STRING),
        ("l_shipdate", DATE),
        ("l_commitdate", DATE),
        ("l_receiptdate", DATE),
        ("l_shipinstruct", STRING),
        ("l_shipmode", STRING),
        ("l_comment", STRING),
    ),
}

TABLE_NAMES = list(TPCH_SCHEMAS)

# Rows at SF 1 (lineitem is ~4 per order on average, set by dbgen).
BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "part": 200_000,
    "partsupp": 800_000,
    "customer": 150_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}


def rows_at_sf(table: str, scale_factor: float) -> int:
    """Nominal row count of ``table`` at ``scale_factor`` (fixed-size
    tables — nation, region — do not scale)."""
    base = BASE_ROWS[table]
    if table in ("region", "nation"):
        return base
    return max(1, round(base * scale_factor))
