"""TPC-H substrate: schemas, deterministic dbgen, and the 22 queries."""

from .dbgen import CURRENT_DATE, generate, generate_table
from .schema import BASE_ROWS, TABLE_NAMES, TPCH_SCHEMAS, rows_at_sf
from .queries import ALL_QUERY_NUMBERS, CHOKEPOINTS, QUERIES, QueryDef, get_query
from .sqltext import SQL_QUERIES, SQL_QUERY_NUMBERS, build_from_sql

__all__ = [
    "ALL_QUERY_NUMBERS", "BASE_ROWS", "CHOKEPOINTS", "CURRENT_DATE",
    "QUERIES", "QueryDef", "TABLE_NAMES", "TPCH_SCHEMAS", "generate",
    "generate_table", "get_query", "rows_at_sf",
    "SQL_QUERIES", "SQL_QUERY_NUMBERS", "build_from_sql",
]
