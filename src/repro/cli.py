"""Command-line interface: rerun any of the paper's experiments.

Examples::

    python -m repro list
    python -m repro table2 --base-sf 0.05
    python -m repro fig7 --json fig7.json
    python -m repro dbgen --sf 0.1 --out /tmp/tpch
    python -m repro query 6 --sf 0.02 --explain
"""

from __future__ import annotations

import argparse
import sys

from repro.engine.cancel import DeadlineExceeded
from repro.engine.spill import MemoryBudgetExceeded

from repro.core import EXPERIMENT_IDS, ExperimentStudy, StudyConfig, save_json
from repro.core.extensions import compression_study, nam_study, proportionality_study
from repro.mlbench import ml_study

__all__ = ["main", "build_parser"]

_EXTENSIONS = {
    "ext-compression": compression_study,
    "ext-nam": nam_study,
    "ext-proportionality": proportionality_study,
    "ext-ml": ml_study,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'The Case for In-Memory OLAP on Wimpy Nodes' (ICDE 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all experiment ids")

    for experiment_id in EXPERIMENT_IDS:
        p = sub.add_parser(experiment_id, help=f"run experiment {experiment_id}")
        p.add_argument("--base-sf", type=float, default=0.02,
                       help="scale factor actually executed (default 0.02)")
        p.add_argument("--json", metavar="PATH", help="write the result as JSON")

    for name in _EXTENSIONS:
        p = sub.add_parser(name, help=f"run extension study {name}")
        p.add_argument("--json", metavar="PATH", help="write the result as JSON")

    dbgen = sub.add_parser("dbgen", help="generate TPC-H data as CSV files")
    dbgen.add_argument("--sf", type=float, default=0.01)
    dbgen.add_argument("--seed", type=int, default=42)
    dbgen.add_argument("--out", required=True, help="output directory")

    query = sub.add_parser("query", help="run one TPC-H query and print rows")
    query.add_argument("number", type=int, help="query number 1-22")
    query.add_argument("--sf", type=float, default=0.01)
    query.add_argument("--limit", type=int, default=10, help="rows to print")
    query.add_argument("--explain", action="store_true", help="print the plan")
    query.add_argument("--profile", action="store_true",
                       help="print the per-operator work profile")
    query.add_argument("--workers", type=int, default=None,
                       help="morsel-parallel worker threads (default: serial)")
    query.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="abort with a typed deadline error if the query "
                            "runs longer than this")
    query.add_argument("--no-skipping", action="store_true",
                       help="ablation: disable predicate pushdown and "
                            "zone-map data skipping")
    query.add_argument("--no-latemat", action="store_true",
                       help="ablation: disable late materialization "
                            "(selection-vector execution)")
    query.add_argument("--no-compressed-exec", action="store_true",
                       help="ablation: disable compressed execution "
                            "(decode-then-eval on encoded columns)")
    query.add_argument("--compress", action="store_true",
                       help="compress the generated tables so compressed "
                            "execution has encoded columns to work on")
    query.add_argument("--no-rollups", action="store_true",
                       help="ablation: skip rollup-cube materialization and "
                            "semantic routing (aggregate over base tables)")
    query.add_argument("--memory-budget", type=int, default=None, metavar="BYTES",
                       help="cap operator working memory; joins and grouped "
                            "aggregates over the cap Grace-partition to disk")
    query.add_argument("--no-spill", action="store_true",
                       help="ablation: fail over-budget operators with a "
                            "typed error instead of spilling to disk")
    _add_trace_args(query)

    validate = sub.add_parser(
        "validate", help="evaluate the paper's prose claims against the reproduction"
    )
    validate.add_argument("--base-sf", type=float, default=0.02)

    report = sub.add_parser("report", help="render the full study as one text report")
    report.add_argument("--base-sf", type=float, default=0.02)
    report.add_argument("--out", metavar="PATH", help="write to a file instead of stdout")
    report.add_argument("--extensions", action="store_true",
                        help="include the extension studies")

    cluster = sub.add_parser("cluster", help="run a query on the WIMPI cluster simulator")
    cluster.add_argument("number", type=int, help="TPC-H query number")
    cluster.add_argument("--nodes", type=int, default=24)
    cluster.add_argument("--base-sf", type=float, default=0.02)
    cluster.add_argument("--target-sf", type=float, default=10.0)
    cluster.add_argument("--compress", action="store_true",
                         help="compress base data (SIII-C2 extension)")
    cluster.add_argument("--nam", action="store_true",
                         help="attach a memory server (SIII-C1 extension)")
    cluster.add_argument("--no-swap", action="store_true",
                         help="fail with OOM instead of thrashing (SIII-C4)")
    cluster.add_argument("--chaos", action="store_true",
                         help="inject a seeded fault plan (OOMs, hangs, "
                              "network drops, stragglers) and run through "
                              "the resilient driver")
    cluster.add_argument("--seed", type=int, default=7,
                         help="chaos fault-plan seed (default 7; same seed "
                              "-> same faults, same recovery, same result)")
    cluster.add_argument("--replication", type=int, default=None,
                         help="lineitem replication factor (buddy replicas; "
                              "default 2 with --chaos, else 1)")
    cluster.add_argument("--timeout-factor", type=float, default=4.0,
                         help="abandon/speculate once a node exceeds this "
                              "multiple of the median modeled estimate")
    cluster.add_argument("--retries", type=int, default=2,
                         help="transient-fault retries per node before "
                              "failing over to a replica")
    _add_trace_args(cluster)

    sql_cmd = sub.add_parser("sql", help="run ad-hoc SQL against TPC-H data")
    sql_cmd.add_argument("statement", help="a SELECT statement")
    sql_cmd.add_argument("--sf", type=float, default=0.01)
    sql_cmd.add_argument("--limit", type=int, default=20, help="rows to print")
    sql_cmd.add_argument("--explain", action="store_true", help="print the plan")
    sql_cmd.add_argument("--workers", type=int, default=None,
                         help="morsel-parallel worker threads (default: serial)")
    sql_cmd.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                         help="abort with a typed deadline error if the query "
                              "runs longer than this")
    sql_cmd.add_argument("--no-skipping", action="store_true",
                         help="ablation: disable predicate pushdown and "
                              "zone-map data skipping")
    sql_cmd.add_argument("--no-latemat", action="store_true",
                         help="ablation: disable late materialization "
                              "(selection-vector execution)")
    sql_cmd.add_argument("--no-compressed-exec", action="store_true",
                         help="ablation: disable compressed execution "
                              "(decode-then-eval on encoded columns)")
    sql_cmd.add_argument("--compress", action="store_true",
                         help="compress the generated tables so compressed "
                              "execution has encoded columns to work on")
    sql_cmd.add_argument("--no-rollups", action="store_true",
                         help="ablation: skip rollup-cube materialization and "
                              "semantic routing (aggregate over base tables)")
    sql_cmd.add_argument("--memory-budget", type=int, default=None, metavar="BYTES",
                         help="cap operator working memory; joins and grouped "
                              "aggregates over the cap Grace-partition to disk")
    sql_cmd.add_argument("--no-spill", action="store_true",
                         help="ablation: fail over-budget operators with a "
                              "typed error instead of spilling to disk")
    _add_trace_args(sql_cmd)

    trace_cmd = sub.add_parser(
        "trace",
        help="run one TPC-H query with tracing on, print the span tree, "
             "and optionally export the trace",
    )
    trace_cmd.add_argument("number", type=int, help="query number 1-22")
    trace_cmd.add_argument("--sf", type=float, default=0.01)
    trace_cmd.add_argument("--workers", type=int, default=None,
                           help="morsel-parallel worker threads (default: serial)")
    trace_cmd.add_argument("--out", metavar="PATH",
                           help="write the trace to PATH")
    trace_cmd.add_argument("--format", choices=("json", "chrome"), default="json",
                           help="trace file format: versioned JSON document "
                                "or chrome://tracing events (default json)")
    trace_cmd.add_argument("--validate", action="store_true",
                           help="validate the JSON trace document against "
                                "the checked-in schema")
    trace_cmd.add_argument("--no-skipping", action="store_true",
                           help="ablation: disable predicate pushdown and "
                                "zone-map data skipping")
    trace_cmd.add_argument("--no-latemat", action="store_true",
                           help="ablation: disable late materialization "
                                "(selection-vector execution)")
    trace_cmd.add_argument("--no-compressed-exec", action="store_true",
                           help="ablation: disable compressed execution "
                                "(decode-then-eval on encoded columns)")
    trace_cmd.add_argument("--compress", action="store_true",
                           help="compress the generated tables so compressed "
                                "execution has encoded columns to work on")
    trace_cmd.add_argument("--no-rollups", action="store_true",
                           help="ablation: skip rollup-cube materialization "
                                "and semantic routing")
    trace_cmd.add_argument("--metrics", action="store_true",
                           help="print the process-wide metrics registry "
                                "(cache and encoded-dispatch hit/miss "
                                "counters) after the run")

    scaling = sub.add_parser(
        "scaling",
        help="measure the engine's multi-worker speedup curve and the "
             "calibrated Amdahl serial fraction it implies",
    )
    scaling.add_argument("--sf", type=float, default=0.05)
    scaling.add_argument("--workers", default="1,2,4",
                         help="comma-separated worker counts (default 1,2,4)")
    scaling.add_argument("--queries", default="1,6",
                         help="comma-separated TPC-H query numbers (default 1,6)")
    scaling.add_argument("--repeats", type=int, default=3,
                         help="timing repetitions per point (best-of)")
    return parser


def _render(value, indent: int = 0) -> str:
    import json

    from repro.core.results import to_jsonable

    return json.dumps(to_jsonable(value), indent=2, sort_keys=True)


def _optimizer_settings(
    no_skipping: bool, no_latemat: bool = False, no_compressed: bool = False,
    no_rollups: bool = False, no_spill: bool = False,
):
    from repro.engine import DEFAULT_SETTINGS, OptimizerSettings

    settings = OptimizerSettings.disabled() if no_skipping else DEFAULT_SETTINGS
    if no_latemat:
        settings = settings.without_latemat()
    if no_compressed:
        settings = settings.without_compressed()
    if no_rollups:
        settings = settings.without_rollups()
    if no_spill:
        settings = settings.without_spilling()
    return settings


def _maybe_enable_rollups(db, disabled: bool):
    """Mine the template workload and materialize rollup cubes unless
    the --no-rollups ablation asked for base-table execution."""
    if disabled:
        return db
    from repro.rollup import enable_rollups

    enable_rollups(db)
    return db


def _maybe_compress_db(db, enabled: bool):
    """With --compress, re-catalog every table through compress_table."""
    if not enabled:
        return db
    from repro.engine.compression import compress_table
    from repro.engine.table import Database

    out = Database(db.name)
    for name in db.table_names:
        out.add(compress_table(db.table(name)))
    return out


def _add_trace_args(parser) -> None:
    parser.add_argument("--trace", metavar="PATH",
                        help="record a trace of the execution and write it "
                             "to PATH")
    parser.add_argument("--trace-format", choices=("json", "chrome"),
                        default="json",
                        help="trace file format: versioned JSON document or "
                             "chrome://tracing events (default json)")


def _make_tracer(path):
    """A live Tracer when --trace was given, else None (NullTracer path)."""
    if not path:
        return None
    from repro.obs import Tracer

    return Tracer()


def _write_trace(tracer, path, fmt: str, meta: dict | None = None) -> None:
    from repro.obs import write_chrome_trace, write_json_trace

    if fmt == "chrome":
        write_chrome_trace(path, tracer)
    else:
        write_json_trace(path, tracer, meta=meta)
    print(f"wrote {fmt} trace to {path}")


def _execute_maybe_parallel(
    db, plan, workers: int | None, settings=None, tracer=None, label=None,
    timeout: float | None = None, memory_budget: int | None = None,
):
    """Run a plan serially, or morsel-parallel when --workers is given."""
    from repro.engine import CancelToken, ParallelExecutor, execute

    cancel = CancelToken.from_timeout(timeout) if timeout is not None else None
    if workers is None:
        return execute(
            db, plan, settings=settings, tracer=tracer, label=label, cancel=cancel,
            memory_budget=memory_budget,
        )
    with ParallelExecutor(
        db, workers=workers, settings=settings, tracer=tracer,
        memory_budget=memory_budget,
    ) as executor:
        return executor.execute(plan, label=label, cancel=cancel)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for experiment_id in EXPERIMENT_IDS:
            print(experiment_id)
        for name in _EXTENSIONS:
            print(name)
        return 0

    if args.command == "dbgen":
        from repro.engine.io import save_database
        from repro.tpch import generate

        db = generate(args.sf, seed=args.seed)
        directory = save_database(db, args.out)
        for name in db.table_names:
            print(f"wrote {directory / (name + '.csv')} ({db.table(name).nrows} rows)")
        return 0

    if args.command == "query":
        from repro.engine.explain import explain, explain_profile
        from repro.tpch import generate, get_query

        db = _maybe_compress_db(generate(args.sf), args.compress)
        _maybe_enable_rollups(db, args.no_rollups)
        plan = get_query(args.number).build(db, {"sf": args.sf})
        settings = _optimizer_settings(
            args.no_skipping, args.no_latemat, args.no_compressed_exec,
            args.no_rollups, args.no_spill,
        )
        if args.explain:
            print(explain(plan, db, settings=settings,
                          memory_budget=args.memory_budget))
            print()
        tracer = _make_tracer(args.trace)
        try:
            result = _execute_maybe_parallel(
                db, plan, args.workers, settings,
                tracer=tracer, label=f"Q{args.number}",
                timeout=args.timeout, memory_budget=args.memory_budget,
            )
        except MemoryBudgetExceeded as err:
            print(f"memory budget exceeded: {err}", file=sys.stderr)
            return 4
        except DeadlineExceeded as err:
            print(f"deadline exceeded: {err}", file=sys.stderr)
            return 3
        print(f"Q{args.number}: {len(result)} rows; columns {result.column_names}")
        for row in result.rows[: args.limit]:
            print("  ", row)
        if args.profile:
            print()
            print(explain_profile(result))
        if tracer is not None:
            _write_trace(
                tracer, args.trace, args.trace_format,
                meta={"query": args.number, "sf": args.sf,
                      "workers": args.workers},
            )
        return 0

    if args.command == "report":
        from repro.core.report import full_report

        study = ExperimentStudy(StudyConfig(base_sf=args.base_sf))
        text = full_report(study, include_extensions=args.extensions)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text)
            print(f"wrote {args.out}")
        else:
            print(text)
        return 0

    if args.command == "cluster":
        from repro.cluster import FaultPlan, RecoveryPolicy, SwapPolicy, WimPiCluster
        from repro.cluster.nam import NamCluster

        replication = args.replication
        if replication is None:
            replication = 2 if args.chaos else 1
        resilient = args.chaos or replication > 1
        if resilient and args.nam:
            print("--chaos / --replication are not supported with --nam")
            return 2
        cluster_cls = NamCluster if args.nam else WimPiCluster
        kwargs = {}
        fault_plan = None
        if resilient:
            if args.chaos:
                fault_plan = FaultPlan.chaos(args.seed, args.nodes)
            kwargs = dict(
                replication=replication,
                fault_plan=fault_plan,
                recovery=RecoveryPolicy(
                    timeout_factor=args.timeout_factor, max_retries=args.retries
                ),
            )
        tracer = _make_tracer(args.trace)
        cluster = cluster_cls(
            args.nodes,
            base_sf=args.base_sf,
            target_sf=args.target_sf,
            compress=args.compress,
            swap_policy=SwapPolicy.NO_SWAP if args.no_swap else SwapPolicy.SWAP,
            tracer=tracer,
            **kwargs,
        )
        run = cluster.run_query(args.number)
        if tracer is not None:
            _write_trace(
                tracer, args.trace, args.trace_format,
                meta={"query": args.number, "nodes": args.nodes,
                      "chaos": args.chaos, "seed": args.seed,
                      "replication": replication},
            )
        print(f"Q{args.number} on {args.nodes} nodes (SF {args.target_sf:g} modeled):")
        if fault_plan is not None:
            print(f"  {fault_plan.describe()}")
        print(f"  wall-clock: {run.total_seconds:.3f} s")
        if hasattr(run, "offloaded_nodes") and run.offloaded_nodes:
            print(f"  offloaded fragments: {len(run.offloaded_nodes)} -> memory server")
        base = run.base if hasattr(run, "base") else run
        if base.node_pressure:
            print(f"  max node pressure: {max(base.node_pressure):.2f}")
        print(f"  gather: {base.gather_seconds:.3f} s, merge: {base.merge_seconds:.3f} s")
        if resilient:
            print(f"  recovery overhead: {base.recovery_seconds:.3f} s "
                  f"(coverage {base.coverage:.3f})")
            print(base.run.report())
        result = run.result
        if result is None:
            print("  result: NONE (all replicas exhausted; coverage 0)")
            return 1
        print(f"  result rows: {len(result)}")
        for row in result.rows[:5]:
            print("   ", row)
        return 0

    if args.command == "validate":
        from repro.core.claims import evaluate_claims

        study = ExperimentStudy(StudyConfig(base_sf=args.base_sf))
        results = evaluate_claims(study)
        passed = sum(r.passed for r in results)
        for r in results:
            mark = "PASS" if r.passed else "FAIL"
            print(f"[{mark}] {r.claim_id:<8} {r.quote}")
            print(f"        -> {r.detail}")
        print(f"\n{passed}/{len(results)} claims reproduced")
        return 0 if passed == len(results) else 1

    if args.command == "sql":
        from repro.engine.explain import explain
        from repro.engine.sql import SqlError, sql as parse_sql
        from repro.tpch import generate

        db = _maybe_compress_db(generate(args.sf), args.compress)
        _maybe_enable_rollups(db, args.no_rollups)
        try:
            plan = parse_sql(db, args.statement)
        except SqlError as err:
            print(f"SQL error: {err}", file=sys.stderr)
            return 2
        settings = _optimizer_settings(
            args.no_skipping, args.no_latemat, args.no_compressed_exec,
            args.no_rollups, args.no_spill,
        )
        if args.explain:
            print(explain(plan, db, settings=settings,
                          memory_budget=args.memory_budget))
            print()
        tracer = _make_tracer(args.trace)
        try:
            result = _execute_maybe_parallel(
                db, plan, args.workers, settings, tracer=tracer, label="sql",
                timeout=args.timeout, memory_budget=args.memory_budget,
            )
        except MemoryBudgetExceeded as err:
            print(f"memory budget exceeded: {err}", file=sys.stderr)
            return 4
        except DeadlineExceeded as err:
            print(f"deadline exceeded: {err}", file=sys.stderr)
            return 3
        print(f"{len(result)} rows; columns {result.column_names}")
        for row in result.rows[: args.limit]:
            print("  ", row)
        if tracer is not None:
            _write_trace(
                tracer, args.trace, args.trace_format,
                meta={"sql": args.statement, "sf": args.sf,
                      "workers": args.workers},
            )
        return 0

    if args.command == "trace":
        from repro.obs import Tracer, render_tree, trace_to_dict, validate_trace
        from repro.tpch import generate, get_query

        db = _maybe_compress_db(generate(args.sf), args.compress)
        _maybe_enable_rollups(db, args.no_rollups)
        plan = get_query(args.number).build(db, {"sf": args.sf})
        settings = _optimizer_settings(
            args.no_skipping, args.no_latemat, args.no_compressed_exec,
            args.no_rollups,
        )
        tracer = Tracer()
        result = _execute_maybe_parallel(
            db, plan, args.workers, settings,
            tracer=tracer, label=f"Q{args.number}",
        )
        print(f"Q{args.number}: {len(result)} rows "
              f"({result.wall_seconds * 1e3:.1f} ms wall)")
        print(render_tree(tracer))
        if args.metrics:
            from repro.obs.metrics import metrics

            print("metrics:")
            for key, value in metrics.snapshot().items():
                print(f"  {key} = {value:g}")
        if args.validate:
            validate_trace(trace_to_dict(tracer))
            print("trace document validates against the schema")
        if args.out:
            _write_trace(
                tracer, args.out, args.format,
                meta={"query": args.number, "sf": args.sf,
                      "workers": args.workers},
            )
        return 0

    if args.command == "scaling":
        from repro.hardware import (
            PI_KEY,
            PerformanceModel,
            get_platform,
            measure_parallel_scaling,
        )
        from repro.tpch import generate, get_query

        worker_counts = [int(w) for w in args.workers.split(",")]
        numbers = [int(q) for q in args.queries.split(",")]
        db = generate(args.sf)
        plans = [get_query(n).build(db, {"sf": args.sf}) for n in numbers]
        curve = measure_parallel_scaling(
            db, plans, worker_counts=worker_counts, repeats=args.repeats
        )
        print(f"measured speedup curve (SF {args.sf:g}, Q{numbers}):")
        for n, s in curve.points:
            print(f"  {int(n)} workers: {s:.2f}x")
        print(f"fitted Amdahl serial fraction: {curve.serial_fraction:.4f}")
        # Show what the calibrated curve does to the Pi prediction.
        from repro.engine import execute as _execute

        profile = _execute(db, plans[0]).profile
        pi = get_platform(PI_KEY)
        assumed = PerformanceModel().predict(profile, pi)
        calibrated = PerformanceModel(scaling=curve).predict(profile, pi)
        print(f"Pi 3B+ prediction for Q{numbers[0]} at this profile: "
              f"{assumed:.3f}s assumed-Amdahl -> {calibrated:.3f}s calibrated")
        return 0

    if args.command in _EXTENSIONS:
        result = _EXTENSIONS[args.command]()
        if args.json:
            save_json(result, args.json)
            print(f"wrote {args.json}")
        else:
            print(_render(result))
        return 0

    study = ExperimentStudy(StudyConfig(base_sf=args.base_sf))
    result = study.run(args.command)
    if args.json:
        save_json(result, args.json)
        print(f"wrote {args.json}")
    else:
        print(_render(result))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
