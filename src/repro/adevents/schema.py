"""Ad-events star schema: three dimensions and one fact table.

A small advertising-analytics workload in the spirit of the paper's
"wimpy node" scan-heavy OLAP setting: one wide, append-only event fact
(impressions/clicks/conversions) against advertiser, campaign, and site
dimensions. Cardinalities scale linearly with ``scale`` the way TPC-H
tables scale with SF; ``scale=1.0`` is deliberately small (100k events)
so the family stays fast on constrained hardware.
"""

from __future__ import annotations

from repro.engine import DATE, FLOAT64, INT64, STRING, Schema

__all__ = ["ADEVENTS_SCHEMAS", "BASE_ROWS", "rows_at_scale", "TABLE_NAMES"]

ADEVENTS_SCHEMAS: dict[str, Schema] = {
    "advertiser": Schema.of(
        ("a_advkey", INT64),
        ("a_name", STRING),
        ("a_category", STRING),
        ("a_country", STRING),
    ),
    "site": Schema.of(
        ("st_sitekey", INT64),
        ("st_name", STRING),
        ("st_channel", STRING),
        ("st_tier", INT64),
    ),
    "campaign": Schema.of(
        ("cm_campkey", INT64),
        ("cm_advkey", INT64),
        ("cm_name", STRING),
        ("cm_objective", STRING),
        ("cm_budget", FLOAT64),
        ("cm_startdate", DATE),
    ),
    "events": Schema.of(
        ("ev_eventkey", INT64),
        ("ev_day", DATE),
        ("ev_campkey", INT64),
        ("ev_sitekey", INT64),
        ("ev_userkey", INT64),
        ("ev_type", STRING),
        ("ev_cost", FLOAT64),
        ("ev_revenue", FLOAT64),
    ),
}

TABLE_NAMES = tuple(ADEVENTS_SCHEMAS)

# Rows at scale=1.0. The fact-to-dimension ratios (1000:1 and up) are what
# make the star shape interesting: dimension joins are cheap, the fact
# scan dominates — the regime the paper's Pi experiments live in.
BASE_ROWS = {
    "advertiser": 100,
    "site": 200,
    "campaign": 400,
    "events": 100_000,
}


def rows_at_scale(table: str, scale: float) -> int:
    """Row count for ``table`` at ``scale`` (>= 1 row, linear scaling)."""
    if table not in BASE_ROWS:
        raise KeyError(f"unknown adevents table {table!r}")
    return max(1, int(round(BASE_ROWS[table] * scale)))
