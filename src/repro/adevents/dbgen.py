"""Deterministic ad-events data generator.

Same contract as :mod:`repro.tpch.dbgen`: everything reproduces from
``(scale, seed)`` via per-table ``np.random.default_rng([seed, k])``
streams, so adding a table never perturbs another table's draws.

The distributions are chosen so the query family has texture:

* event types are heavily skewed (85% impression / 12% click /
  3% conversion) — selective predicates and CASE pivots;
* revenue is zero except for conversions — SUM-based ROI queries see
  sparse columns;
* user keys follow a power-law-ish mixture so "whale user" queries
  (IN + GROUP BY/HAVING) have a meaningful head;
* some sites never convert and some campaigns overspend their budget,
  so NOT EXISTS and correlated-scalar queries return non-trivial,
  non-empty answers.
"""

from __future__ import annotations

import numpy as np

from repro.engine import Column, Database, Table, date_to_days
from repro.engine.types import DATE, FLOAT64, INT64

from .schema import rows_at_scale

__all__ = ["generate", "FIRST_DAY", "N_DAYS"]

# The fact covers the first half of 2024.
FIRST_DAY = date_to_days("2024-01-01")
N_DAYS = 182

_TABLE_SEEDS = {"advertiser": 0, "site": 1, "campaign": 2, "events": 3}

_CATEGORIES = ["retail", "auto", "travel", "finance", "games", "media",
               "food", "tech"]
_COUNTRIES = ["US", "DE", "FR", "JP", "BR", "IN", "GB", "CA"]
_CHANNELS = ["web", "mobile", "video", "social"]
_OBJECTIVES = ["awareness", "conversion", "retargeting"]
_EVENT_TYPES = np.asarray(["impression", "click", "conversion"], dtype=object)
_TYPE_WEIGHTS = [0.85, 0.12, 0.03]


def _rng(seed: int, table: str) -> np.random.Generator:
    return np.random.default_rng([seed, _TABLE_SEEDS[table]])


def _pool_column(rng: np.random.Generator, n: int, pool) -> Column:
    pool_arr = np.asarray(pool, dtype=object)
    codes = rng.integers(0, len(pool_arr), size=n).astype(np.int32)
    return Column.from_string_codes(codes, pool_arr)


def _gen_advertiser(rng: np.random.Generator, n: int) -> Table:
    keys = np.arange(1, n + 1, dtype=np.int64)
    return Table("advertiser", {
        "a_advkey": Column(INT64, keys),
        "a_name": Column.from_strings([f"Advertiser#{k:05d}" for k in keys]),
        "a_category": _pool_column(rng, n, _CATEGORIES),
        "a_country": _pool_column(rng, n, _COUNTRIES),
    })


def _gen_site(rng: np.random.Generator, n: int) -> Table:
    keys = np.arange(1, n + 1, dtype=np.int64)
    return Table("site", {
        "st_sitekey": Column(INT64, keys),
        "st_name": Column.from_strings([f"site{k:04d}.example" for k in keys]),
        "st_channel": _pool_column(rng, n, _CHANNELS),
        "st_tier": Column(INT64, rng.integers(1, 4, size=n).astype(np.int64)),
    })


def _gen_campaign(rng: np.random.Generator, n: int, n_adv: int) -> Table:
    keys = np.arange(1, n + 1, dtype=np.int64)
    # Per-campaign spend lands around ~25 regardless of scale (events and
    # campaigns both scale linearly), so a 5..60 budget range splits the
    # campaigns into healthy and overspent halves.
    budgets = np.round(rng.uniform(5.0, 60.0, size=n), 2)
    startdates = FIRST_DAY + rng.integers(0, N_DAYS // 2, size=n)
    return Table("campaign", {
        "cm_campkey": Column(INT64, keys),
        "cm_advkey": Column(INT64, rng.integers(1, n_adv + 1, size=n).astype(np.int64)),
        "cm_name": Column.from_strings([f"Campaign#{k:06d}" for k in keys]),
        "cm_objective": _pool_column(rng, n, _OBJECTIVES),
        "cm_budget": Column(FLOAT64, budgets),
        "cm_startdate": Column(DATE, startdates.astype(np.int32)),
    })


def _gen_events(rng: np.random.Generator, n: int, n_camp: int,
                n_site: int) -> Table:
    keys = np.arange(1, n + 1, dtype=np.int64)
    days = FIRST_DAY + rng.integers(0, N_DAYS, size=n)
    campkeys = rng.integers(1, n_camp + 1, size=n).astype(np.int64)
    # The last 10% of sites never appear in the fact: NOT EXISTS queries
    # must return rows even at small scales.
    active_sites = max(1, (n_site * 9) // 10)
    sitekeys = rng.integers(1, active_sites + 1, size=n).astype(np.int64)
    # Power-law-ish users: 20% of draws come from a 100-key "whale" head.
    n_users = max(200, n // 20)
    whales = rng.integers(1, min(100, n_users) + 1, size=n)
    longtail = rng.integers(1, n_users + 1, size=n)
    userkeys = np.where(rng.random(n) < 0.2, whales, longtail).astype(np.int64)
    type_codes = rng.choice(3, size=n, p=_TYPE_WEIGHTS).astype(np.int32)
    cost = np.round(
        np.where(type_codes == 0, rng.uniform(0.001, 0.01, size=n),
                 np.where(type_codes == 1, rng.uniform(0.05, 0.9, size=n),
                          rng.uniform(0.5, 2.0, size=n))), 5)
    # Revenue per conversion is centered so per-campaign margin straddles
    # zero: profitability CASE buckets split instead of degenerating.
    revenue = np.round(
        np.where(type_codes == 2, rng.uniform(0.5, 6.5, size=n), 0.0), 2)
    return Table("events", {
        "ev_eventkey": Column(INT64, keys),
        "ev_day": Column(DATE, days.astype(np.int32)),
        "ev_campkey": Column(INT64, campkeys),
        "ev_sitekey": Column(INT64, sitekeys),
        "ev_userkey": Column(INT64, userkeys),
        "ev_type": Column.from_string_codes(type_codes, _EVENT_TYPES),
        "ev_cost": Column(FLOAT64, cost),
        "ev_revenue": Column(FLOAT64, revenue),
    })


def generate(scale: float = 1.0, seed: int = 7) -> Database:
    """Generate the ad-events star at ``scale``; deterministic in
    ``(scale, seed)``."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    n_adv = rows_at_scale("advertiser", scale)
    n_site = rows_at_scale("site", scale)
    n_camp = rows_at_scale("campaign", scale)
    n_events = rows_at_scale("events", scale)
    db = Database(f"adevents_x{scale:g}")
    db.add(_gen_advertiser(_rng(seed, "advertiser"), n_adv))
    db.add(_gen_site(_rng(seed, "site"), n_site))
    db.add(_gen_campaign(_rng(seed, "campaign"), n_camp, n_adv))
    db.add(_gen_events(_rng(seed, "events"), n_events, n_camp, n_site))
    return db
