"""The ad-events query family: named SQL templates over the star schema.

Unlike the TPC-H side (where SQL texts mirror handwritten builder
plans), this family is SQL-first: the texts below are the reference
definitions and the differential harness checks serial vs parallel
execution and committed goldens, not SQL-vs-builder. Together they
exercise every generalized frontend construct: CASE pivots, BETWEEN,
UNION, NOT EXISTS, correlated scalar subqueries, IN (SELECT ... HAVING),
derived tables, and the string functions (UPPER / CONCAT / SUBSTRING).
"""

from __future__ import annotations

from repro.engine import Database, Q
from repro.engine.sql import sql

__all__ = ["ADEVENTS_QUERIES", "QUERY_NAMES", "build"]

ADEVENTS_QUERIES: dict[str, str] = {
    # Funnel pivot: one pass over the fact, CASE-encoded counters.
    "daily_funnel": """
        SELECT ev_day,
               COUNT(*) AS events,
               SUM(CASE WHEN ev_type = 'click' THEN 1 ELSE 0 END) AS clicks,
               SUM(CASE WHEN ev_type = 'conversion' THEN 1 ELSE 0 END)
                   AS conversions,
               SUM(ev_cost) AS spend
        FROM events
        GROUP BY ev_day
        ORDER BY ev_day
    """,
    # Click-through rate per channel: dimension join + CASE ratio.
    "channel_ctr": """
        SELECT st_channel,
               SUM(CASE WHEN ev_type = 'click' THEN 1 ELSE 0 END)
               / SUM(CASE WHEN ev_type = 'impression' THEN 1 ELSE 0 END) AS ctr,
               SUM(ev_cost) AS spend
        FROM events
        JOIN site ON ev_sitekey = st_sitekey
        GROUP BY st_channel
        ORDER BY st_channel
    """,
    # Snowflake join through campaign to advertiser, date-range BETWEEN.
    "top_advertisers": """
        SELECT a_name, SUM(ev_cost) AS spend, SUM(ev_revenue) AS revenue
        FROM events
        JOIN campaign ON ev_campkey = cm_campkey
        JOIN advertiser ON cm_advkey = a_advkey
        WHERE ev_day BETWEEN DATE '2024-02-01' AND DATE '2024-03-31'
        GROUP BY a_name
        ORDER BY spend DESC, a_name
        LIMIT 10
    """,
    # Correlated scalar subquery: campaigns whose spend exceeds budget.
    "overspent_campaigns": """
        SELECT cm_name, cm_budget
        FROM campaign
        WHERE cm_budget < (
            SELECT SUM(ev_cost) FROM events WHERE ev_campkey = cm_campkey)
        ORDER BY cm_name
    """,
    # Anti-join via NOT EXISTS: sites with no traffic at all.
    "dead_sites": """
        SELECT st_name, st_channel
        FROM site
        WHERE NOT EXISTS (
            SELECT * FROM events WHERE ev_sitekey = st_sitekey)
        ORDER BY st_name
    """,
    # UNION (distinct) of two site populations.
    "premium_reach": """
        SELECT st_name FROM site WHERE st_tier = 1
        UNION
        SELECT st_name FROM site WHERE st_channel = 'video'
        ORDER BY st_name
    """,
    # String function in the group key (UPPER) plus an IN-list filter.
    "category_revenue": """
        SELECT UPPER(a_category) AS category,
               SUM(ev_revenue) AS revenue,
               COUNT(*) AS events
        FROM events
        JOIN campaign ON ev_campkey = cm_campkey
        JOIN advertiser ON cm_advkey = a_advkey
        WHERE a_country IN ('US', 'DE', 'JP')
        GROUP BY category
        ORDER BY category
    """,
    # SUBSTRING in the group key over the dictionary-encoded name column.
    "site_prefixes": """
        SELECT SUBSTRING(st_name FROM 5 FOR 2) AS bucket,
               COUNT(*) AS n_sites
        FROM site
        GROUP BY bucket
        ORDER BY bucket
    """,
    # CONCAT-built segment label as the group key.
    "advertiser_segments": """
        SELECT CONCAT(a_country, '-', a_category) AS segment,
               COUNT(*) AS n_advertisers
        FROM advertiser
        GROUP BY segment
        ORDER BY segment
    """,
    # Semi-join via IN (SELECT ... GROUP BY ... HAVING): activity of
    # repeat-converter "whale" users.
    "whale_share": """
        SELECT COUNT(*) AS whale_events, SUM(ev_cost) AS whale_spend
        FROM events
        WHERE ev_userkey IN (
            SELECT ev_userkey FROM events
            WHERE ev_type = 'conversion'
            GROUP BY ev_userkey
            HAVING COUNT(*) >= 3)
    """,
    # Derived table with per-campaign margins, re-aggregated with a CASE
    # over the aggregate outputs.
    "campaign_margin": """
        SELECT cm_objective,
               COUNT(*) AS n_campaigns,
               SUM(CASE WHEN margin > 0 THEN 1 ELSE 0 END) AS n_profitable
        FROM (
            SELECT cm_objective, cm_campkey,
                   SUM(ev_revenue) - SUM(ev_cost) AS margin
            FROM events
            JOIN campaign ON ev_campkey = cm_campkey
            GROUP BY cm_objective, cm_campkey
        ) AS per_campaign
        GROUP BY cm_objective
        ORDER BY cm_objective
    """,
}

QUERY_NAMES = tuple(ADEVENTS_QUERIES)


def build(db: Database, name: str) -> Q:
    """Plan the named ad-events query against ``db``."""
    try:
        text = ADEVENTS_QUERIES[name]
    except KeyError:
        raise KeyError(f"unknown adevents query {name!r}") from None
    return sql(db, text)
