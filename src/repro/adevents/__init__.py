"""Ad-events workload family: a star-schema generator and SQL query set.

A second workload beside TPC-H, defined entirely through the SQL
front-end. ``generate(scale, seed)`` builds the star deterministically;
``build(db, name)`` plans one of the named queries in
:data:`ADEVENTS_QUERIES`.
"""

from .dbgen import FIRST_DAY, N_DAYS, generate
from .queries import ADEVENTS_QUERIES, QUERY_NAMES, build
from .schema import ADEVENTS_SCHEMAS, BASE_ROWS, TABLE_NAMES, rows_at_scale

__all__ = [
    "ADEVENTS_QUERIES", "ADEVENTS_SCHEMAS", "BASE_ROWS", "FIRST_DAY",
    "N_DAYS", "QUERY_NAMES", "TABLE_NAMES", "build", "generate",
    "rows_at_scale",
]
