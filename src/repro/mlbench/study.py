"""The ML extension study: training cost on Pi vs servers, single-node
and data-parallel (the paper's §V plan, executed).

Two results the paper's microbenchmarks predict:

* single-node: ML training is compute-dense (many flops per byte), so
  the Pi's *relative* gap to the servers is set by core compute — the
  2-6x of Fig. 2 — not the 20-99x bandwidth gap, making ML-per-dollar
  spectacular on the Pi;
* distributed: full-batch gradient descent data-parallelizes with one
  small allreduce (the weight vector) per iteration, so a WIMPI-style
  cluster scales until the per-iteration network latency floor —
  the same plateau Table III shows for Q6/Q14.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.network import NetworkModel
from repro.hardware import PLATFORMS, PI_KEY, PerformanceModel
from repro.tpch import generate

from .kernels import FitResult, kmeans, logistic_regression
from .workload import lineitem_features

__all__ = ["MlPlatformResult", "ml_study", "distributed_training_time"]


@dataclass
class MlPlatformResult:
    platform: str
    kernel: str
    seconds: float
    msrp_seconds_usd: float  # runtime x hardware price (per-dollar metric)


def distributed_training_time(
    single_node_seconds: float,
    n_nodes: int,
    iterations: int,
    weight_bytes: float,
    network: NetworkModel | None = None,
) -> float:
    """Data-parallel training wall-clock: compute splits across nodes;
    each iteration pays a gather+broadcast of the model over the
    paper's 220 Mbps links (sequential driver, as in WIMPI)."""
    if n_nodes < 1:
        raise ValueError("need at least one node")
    network = network or NetworkModel()
    compute = single_node_seconds / n_nodes
    per_iteration = network.gather_time([weight_bytes] * n_nodes) + network.transfer_time(
        weight_bytes
    )
    return compute + iterations * per_iteration


def ml_study(
    base_sf: float = 0.02,
    target_sf: float = 1.0,
    platforms: tuple[str, ...] = ("pi3b+", "op-e5", "op-gold"),
    cluster_sizes: tuple[int, ...] = (4, 8, 16, 24),
    seed: int = 42,
) -> dict:
    """Train k-means and logistic regression on TPC-H lineitem features;
    price the training per platform and model the WIMPI scaling curve.

    Returns ``{"fits": {...}, "platforms": [...], "cluster": {...}}``.
    """
    db = generate(base_sf, seed=seed)
    features, labels = lineitem_features(db)
    fits: dict[str, FitResult] = {
        "kmeans": kmeans(features, k=8, max_iterations=10),
        "logreg": logistic_regression(features, labels, iterations=50),
    }

    model = PerformanceModel(platform_factors={})  # bare kernels, no DBMS
    scale = target_sf / base_sf
    rows: list[MlPlatformResult] = []
    for kernel_name, fit in fits.items():
        profile = fit.profile.scaled(scale)
        for key in platforms:
            spec = PLATFORMS[key]
            seconds = model.predict(profile, spec)
            price = spec.total_msrp_usd if spec.total_msrp_usd else float("nan")
            rows.append(MlPlatformResult(
                platform=key,
                kernel=kernel_name,
                seconds=seconds,
                msrp_seconds_usd=seconds * price,
            ))

    # Data-parallel logistic regression on WIMPI.
    pi = PLATFORMS[PI_KEY]
    logreg = fits["logreg"]
    single = model.predict(logreg.profile.scaled(scale), pi)
    weight_bytes = logreg.model.nbytes
    cluster = {
        n: distributed_training_time(single, n, logreg.iterations, weight_bytes)
        for n in cluster_sizes
    }
    return {
        "fits": fits,
        "platforms": rows,
        "cluster": {"single_pi_seconds": single, "by_nodes": cluster},
    }
