"""Instrumented machine-learning kernels (the paper's §V future work).

"In the near future, we plan to extend our study with other
computationally intensive workloads, in particular machine learning."

Each kernel really trains on numpy data *and* records a
:class:`~repro.engine.profile.WorkProfile`, so the same hardware model
that prices TPC-H can price ML training: per-iteration float ops and the
bytes streamed through the feature matrix. ML training is far more
compute-dense per byte than OLAP scans — exactly the regime where the
paper's microbenchmarks say the Pi shines relative to its price.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine import OperatorWork, WorkProfile

__all__ = ["FitResult", "kmeans", "logistic_regression"]


@dataclass
class FitResult:
    """A trained model plus the work it took.

    Attributes:
        name: kernel name.
        model: kernel-specific parameters (centroids / weights).
        metric: quality metric (inertia for k-means, accuracy for
            logistic regression).
        iterations: iterations actually run.
        profile: hardware-independent work profile of the training.
    """

    name: str
    model: np.ndarray
    metric: float
    iterations: int
    profile: WorkProfile


def _training_work(name: str, n: int, d: int, iterations: int,
                   flops_per_row_iter: float) -> WorkProfile:
    """Profile of an iterative pass-based trainer: every iteration
    streams the feature matrix once and spends dense float ops on it."""
    work = OperatorWork(
        operator="mltrain",
        seq_bytes=float(n * d * 8 * iterations),
        ops=float(n * flops_per_row_iter * iterations),
        tuples_in=float(n * iterations),
        tuples_out=float(n),
        out_bytes=float(d * 8),
    )
    return WorkProfile([work])


def kmeans(
    features: np.ndarray,
    k: int = 8,
    max_iterations: int = 20,
    tolerance: float = 1e-4,
    seed: int = 0,
) -> FitResult:
    """Lloyd's k-means; returns centroids, inertia, and the work profile."""
    if features.ndim != 2 or not len(features):
        raise ValueError("features must be a non-empty 2-D array")
    n, d = features.shape
    rng = np.random.default_rng(seed)
    # k-means++ seeding: spread initial centroids by squared distance.
    k = min(k, n)
    first = int(rng.integers(n))
    centroids = [features[first].astype(np.float64)]
    for _ in range(k - 1):
        dist_sq = np.min(
            ((features[:, None, :] - np.asarray(centroids)[None, :, :]) ** 2).sum(axis=2),
            axis=1,
        )
        total = dist_sq.sum()
        if total <= 0:
            centroids.append(features[int(rng.integers(n))].astype(np.float64))
            continue
        pick = int(rng.choice(n, p=dist_sq / total))
        centroids.append(features[pick].astype(np.float64))
    centroids = np.asarray(centroids)
    iterations = 0
    inertia = np.inf
    for iterations in range(1, max_iterations + 1):
        distances = ((features[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        assignment = distances.argmin(axis=1)
        new_inertia = float(distances[np.arange(n), assignment].sum())
        for j in range(len(centroids)):
            members = features[assignment == j]
            if len(members):
                centroids[j] = members.mean(axis=0)
        if inertia - new_inertia < tolerance * max(inertia, 1e-12):
            inertia = new_inertia
            break
        inertia = new_inertia
    # distance computation: ~3 flops per (row, centroid, dim) + argmin.
    profile = _training_work("kmeans", n, d, iterations,
                             flops_per_row_iter=3.0 * len(centroids) * d + len(centroids))
    return FitResult("kmeans", centroids, inertia, iterations, profile)


def logistic_regression(
    features: np.ndarray,
    labels: np.ndarray,
    iterations: int = 50,
    learning_rate: float = 0.1,
) -> FitResult:
    """Full-batch gradient-descent logistic regression; returns weights,
    training accuracy, and the work profile."""
    if features.ndim != 2 or len(features) != len(labels):
        raise ValueError("features/labels shape mismatch")
    n, d = features.shape
    # Standardize for stable steps (counted as one extra pass).
    mean = features.mean(axis=0)
    std = features.std(axis=0)
    std[std == 0] = 1.0
    x = (features - mean) / std
    y = labels.astype(np.float64)
    weights = np.zeros(d + 1)
    xb = np.concatenate([x, np.ones((n, 1))], axis=1)
    for _ in range(iterations):
        logits = xb @ weights
        preds = 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))
        gradient = xb.T @ (preds - y) / n
        weights -= learning_rate * gradient
    accuracy = float(((xb @ weights > 0) == (y > 0.5)).mean())
    # matvec + sigmoid + gradient: ~4 flops per (row, dim) per iteration.
    profile = _training_work("logreg", n, d + 1, iterations, flops_per_row_iter=4.0 * (d + 1))
    return FitResult("logreg", weights, accuracy, iterations, profile)
