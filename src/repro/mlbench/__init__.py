"""ML workload extension — the paper's SV future work, executed."""

from .kernels import FitResult, kmeans, logistic_regression
from .study import MlPlatformResult, distributed_training_time, ml_study
from .workload import FEATURE_COLUMNS, lineitem_features

__all__ = [
    "FEATURE_COLUMNS", "FitResult", "MlPlatformResult",
    "distributed_training_time", "kmeans", "lineitem_features",
    "logistic_regression", "ml_study",
]
