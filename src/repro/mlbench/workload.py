"""Feature extraction from TPC-H for the ML study.

The ML workloads train on real generated data: a numeric feature matrix
drawn from lineitem (the quantity / price / discount / tax space) with a
derived "large order line" label for classification.
"""

from __future__ import annotations

import numpy as np

from repro.engine import Database

__all__ = ["lineitem_features", "FEATURE_COLUMNS"]

FEATURE_COLUMNS = ("l_quantity", "l_extendedprice", "l_discount", "l_tax")


def lineitem_features(db: Database, limit: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """(features, labels) from lineitem.

    Features: the four numeric lineitem measures. Label: whether the
    line's discounted revenue exceeds the table median (a balanced,
    data-derived target).
    """
    li = db.table("lineitem")
    columns = [li.column(name).values.astype(np.float64) for name in FEATURE_COLUMNS]
    features = np.stack(columns, axis=1)
    if limit is not None:
        features = features[:limit]
    revenue = features[:, 1] * (1.0 - features[:, 2])
    labels = (revenue > np.median(revenue)).astype(np.int64)
    return features, labels
