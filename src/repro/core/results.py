"""Serialization of study results (JSON/CSV) for EXPERIMENTS.md and
external analysis."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

__all__ = ["to_jsonable", "save_json", "runtimes_to_csv"]


def to_jsonable(value):
    """Recursively convert study outputs (dataclasses, nested dicts with
    int keys, numpy scalars) into JSON-compatible structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: to_jsonable(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if hasattr(value, "item") and callable(value.item):  # numpy scalar
        try:
            return value.item()
        except (TypeError, ValueError):
            pass
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def save_json(value, path: "str | Path") -> Path:
    """Write a study result to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(to_jsonable(value), indent=2, sort_keys=True))
    return path


def runtimes_to_csv(runtimes: dict[str, dict[int, float]], path: "str | Path") -> Path:
    """Write a {platform: {query: seconds}} grid as CSV."""
    path = Path(path)
    queries = sorted({q for per in runtimes.values() for q in per})
    lines = ["platform," + ",".join(f"q{q}" for q in queries)]
    for platform, per in runtimes.items():
        cells = [f"{per[q]:.6f}" if q in per else "" for q in queries]
        lines.append(platform + "," + ",".join(cells))
    path.write_text("\n".join(lines) + "\n")
    return path
