"""Study harness: profiling, experiments, paper data, comparisons."""

from .compare import ShapeComparison, agreement_on_winner, compare_grids, geometric_mean_ratio
from .paperdata import (
    SF10_QUERIES,
    TABLE2_SF1_RUNTIMES,
    TABLE3_SF10_RUNTIMES,
    TABLE3_WIMPI_RUNTIMES,
    WIMPI_CLUSTER_SIZES,
)
from .profiler import ProfiledQuery, TPCHProfiler
from .results import runtimes_to_csv, save_json, to_jsonable
from .claims import CLAIMS, Claim, ClaimResult, evaluate_claims
from .report import full_report
from .study import EXPERIMENT_IDS, ExperimentStudy, StudyConfig

__all__ = [
    "EXPERIMENT_IDS", "ExperimentStudy", "ProfiledQuery", "SF10_QUERIES",
    "ShapeComparison", "StudyConfig", "TABLE2_SF1_RUNTIMES",
    "TABLE3_SF10_RUNTIMES", "TABLE3_WIMPI_RUNTIMES", "TPCHProfiler",
    "WIMPI_CLUSTER_SIZES", "agreement_on_winner", "compare_grids",
    "geometric_mean_ratio", "runtimes_to_csv", "save_json", "to_jsonable",
    "CLAIMS", "Claim", "ClaimResult", "evaluate_claims", "full_report",
]
