"""A machine-checkable registry of the paper's prose claims.

EXPERIMENTS.md narrates how well the reproduction matches the paper;
this module makes the same assessment executable: each
:class:`Claim` binds a quoted assertion from the paper to a predicate
over the study's outputs. ``evaluate_claims(study)`` returns a verdict
per claim, and ``python -m repro validate`` prints the scorecard.

The shape tests under ``tests/`` enforce a *subset* of these in CI; the
registry is the user-facing, all-in-one-place version.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable

from repro.hardware import CLOUD, ON_PREMISES, PI_KEY, SERVER_KEYS
from repro.tpch import ALL_QUERY_NUMBERS, CHOKEPOINTS

from .study import ExperimentStudy

__all__ = ["Claim", "ClaimResult", "CLAIMS", "evaluate_claims"]


@dataclass(frozen=True)
class Claim:
    """One assertion from the paper.

    Attributes:
        claim_id: short identifier (section-scoped).
        quote: the paper's wording (abridged).
        check: predicate returning (passed, detail-string).
    """

    claim_id: str
    quote: str
    check: Callable[[ExperimentStudy], tuple[bool, str]]


@dataclass(frozen=True)
class ClaimResult:
    claim_id: str
    quote: str
    passed: bool
    detail: str


# ----------------------------------------------------------------------
# Check implementations
# ----------------------------------------------------------------------


def _fig2_single_core(study):
    micro = study.fig2()["micro"]
    ratio = (micro["op-e5"].whetstone_mwips_1core
             / micro[PI_KEY].whetstone_mwips_1core)
    return 2.0 <= ratio <= 3.0, f"Whetstone 1-core op-e5/Pi = {ratio:.2f}x"


def _fig2_sysbench_parity(study):
    micro = study.fig2()["micro"]
    ratio = micro[PI_KEY].sysbench_s_1core / micro["op-e5"].sysbench_s_1core
    return 0.8 <= ratio <= 1.25, f"sysbench 1-core Pi/op-e5 = {ratio:.2f}x"


def _fig2_membw(study):
    micro = study.fig2()["micro"]
    pi = micro[PI_KEY]
    one = [m.membw_gbs_1core / pi.membw_gbs_1core
           for k, m in micro.items() if k != PI_KEY]
    full = [m.membw_gbs_all / pi.membw_gbs_all
            for k, m in micro.items() if k != PI_KEY]
    ok = min(one) >= 5 and max(one) <= 11 and min(full) >= 20 and max(full) <= 99
    return ok, f"1-core {min(one):.1f}-{max(one):.1f}x, all-core {min(full):.0f}-{max(full):.0f}x"


def _fig2_network(study):
    mbps = study.fig2()["network_mbps"]
    return 200 <= mbps <= 240, f"{mbps:.0f} Mbps node-to-node"


def _table2_median_band(study):
    table2 = study.table2()
    medians = {
        server: statistics.median(
            table2[server][q] / table2[PI_KEY][q] for q in ALL_QUERY_NUMBERS
        )
        for server in SERVER_KEYS
    }
    worst = min(medians.values())
    best = max(medians.values())
    ok = all(0.05 < m < 0.40 for m in medians.values())
    return ok, f"Pi median relative performance spans {worst:.2f}-{best:.2f}x"


def _table2_q1_worst(study):
    table2 = study.table2()
    ratios = {
        q: statistics.median(table2[PI_KEY][q] / table2[s][q] for s in SERVER_KEYS)
        for q in ALL_QUERY_NUMBERS
    }
    rank = sorted(ratios, key=ratios.get, reverse=True).index(1) + 1
    return rank <= 6, f"Q1 is the Pi's #{rank} worst query of 22"


def _table3_cliff(study):
    wimpi = study.table3()["wimpi"]
    jumps = {q: wimpi[4][q] / wimpi[12][q] for q in (1, 3, 5)}
    ok = all(j > 5 for j in jumps.values()) and max(jumps.values()) > 10
    detail = ", ".join(f"Q{q}: {j:.0f}x" for q, j in jumps.items())
    return ok, f"4->12 node jumps: {detail}"


def _table3_q13_flat(study):
    wimpi = study.table3()["wimpi"]
    values = [wimpi[n][13] for n in sorted(wimpi)]
    flat = max(values) / min(values) < 1.001
    return flat, f"Q13 spans {min(values):.1f}-{max(values):.1f} s across sizes"


def _table3_network_floor(study):
    wimpi = study.table3()["wimpi"]
    gains = [wimpi[16][q] / wimpi[24][q] for q in (6, 14)]
    ok = all(g < 1.6 for g in gains)
    return ok, f"Q6/Q14 16->24 node gains: {gains[0]:.2f}x / {gains[1]:.2f}x"


def _fig4_ordering(study):
    cells = {(r.platform, r.strategy, r.query): r.seconds for r in study.fig4()}
    violations = [
        (platform, q)
        for platform in ("op-e5", "op-gold", PI_KEY)
        for q in CHOKEPOINTS
        if not (
            cells[(platform, "access-aware", q)]
            < cells[(platform, "hybrid", q)]
            < cells[(platform, "data-centric", q)]
        )
    ]
    return not violations, f"{len(violations)} ordering violations of 24 cells"


def _fig5_sf1_always_wins(study):
    fig5 = study.fig5()
    worst = min(v for server in ON_PREMISES for v in fig5["sf1"][server].values())
    return worst > 1.0, f"worst SF 1 MSRP improvement = {worst:.1f}x"


def _fig5_q13_never_breaks_even(study):
    fig5 = study.fig5()
    best = max(
        fig5["sf10"][server][n][13]
        for server in ON_PREMISES
        for n in fig5["sf10"][server]
    )
    return best < 1.0, f"best Q13 SF 10 MSRP cell = {best:.2f}x"


def _fig6_cloud_loses_everywhere(study):
    fig6 = study.fig6()
    worst = min(v for server in CLOUD for v in fig6["sf1"][server].values())
    return worst > 1.0, f"worst SF 1 hourly improvement = {worst:.0f}x"


def _fig7_band(study):
    fig7 = study.fig7()
    values = [v for server in ON_PREMISES for v in fig7["sf1"][server].values()]
    med = statistics.median(values)
    ok = min(values) > 1.0 and 3 < med < 25
    return ok, f"SF 1 energy improvements {min(values):.1f}-{max(values):.1f}x, median {med:.1f}x"


def _fig7_selective_beats_scan(study):
    fig7 = study.fig7()
    ok = all(fig7["sf1"][s][6] > fig7["sf1"][s][1] for s in ON_PREMISES)
    return ok, "Q6 (selective) beats Q1 (memory-bound) on energy"


CLAIMS: tuple[Claim, ...] = (
    Claim("II-C1a", "Pi single-core Whetstone within 2-3x of op-e5", _fig2_single_core),
    Claim("II-C1b", "Pi sysbench single-core nearly identical to op-e5", _fig2_sysbench_parity),
    Claim("II-C2", "memory bandwidth gaps 5-11x (1-core) and 20-99x (all-core)", _fig2_membw),
    Claim("II-C3", "iperf measured ~220 Mbps between WIMPI nodes", _fig2_network),
    Claim("II-D1a", "Pi median relative performance 0.1-0.3x of the servers", _table2_median_band),
    Claim("II-D1b", "worst performance for Q1 (memory-bound lineitem scan)", _table2_q1_worst),
    Claim("II-D2a", "huge jump (10-100x) after doubling/tripling 4 nodes", _table3_cliff),
    Claim("II-D2b", "adding nodes has no impact on Q13", _table3_q13_flat),
    Claim("II-D2c", "Q6/Q14 diminish past a point (network latency bottleneck)", _table3_network_floor),
    Claim("II-D3", "access-aware best, data-centric worst, on every platform", _fig4_ordering),
    Claim("III-A1a", "SF 1: the Pi always wins the MSRP comparison", _fig5_sf1_always_wins),
    Claim("III-A1b", "Q13: servers always better, irrespective of cluster size", _fig5_q13_never_breaks_even),
    Claim("III-A2", "the Pi outperforms all Cloud servers for all queries (SF 1)", _fig6_cloud_loses_everywhere),
    Claim("III-B1a", "SF 1 energy efficiency 2-22x better, median ~10x", _fig7_band),
    Claim("III-B1b", "selective queries show the best energy improvement", _fig7_selective_beats_scan),
)


def evaluate_claims(
    study: ExperimentStudy, claims: tuple[Claim, ...] = CLAIMS
) -> list[ClaimResult]:
    """Evaluate every claim against a study instance."""
    results = []
    for claim in claims:
        try:
            passed, detail = claim.check(study)
        except Exception as error:  # a crash is a failed claim, not a crash
            passed, detail = False, f"check raised {type(error).__name__}: {error}"
        results.append(ClaimResult(claim.claim_id, claim.quote, passed, detail))
    return results
