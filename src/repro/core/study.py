"""The experimental study harness — reruns every table and figure.

``ExperimentStudy`` reproduces each artifact of the paper by id:

=========== =====================================================
id          artifact
=========== =====================================================
``table1``  hardware catalog (Table I)
``fig2``    microbenchmarks (Fig. 2a-d + §II-C3 network)
``table2``  TPC-H SF 1 runtimes, 22 queries x 10 platforms
``fig3_sf1``  SF 1 speedups relative to the Pi
``table3``  TPC-H SF 10: servers + WIMPI at 6 cluster sizes
``fig3_sf10`` SF 10 speedups relative to WIMPI
``fig4``    execution strategies, single-threaded
``fig5``    MSRP-normalized comparison (SF 1 + SF 10)
``fig6``    hourly-cost-normalized comparison (SF 1 + SF 10)
``fig7``    energy-normalized comparison (SF 1 + SF 10)
=========== =====================================================

All computation is cached on the instance: the TPC-H database is
generated once, each query executes once per scale setting, and the
hardware model is applied analytically per platform.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import (
    energy_improvement,
    hourly_improvement,
    msrp_improvement,
    speedup_table,
)
from repro.cluster import WimPiCluster
from repro.hardware import (
    ALL_KEYS,
    CLOUD,
    ON_PREMISES,
    PI_KEY,
    PLATFORMS,
    PerformanceModel,
    SERVER_KEYS,
)
from repro.microbench import network_bandwidth_mbps, run_all as run_microbench
from repro.strategies import run_matrix
from repro.tpch import ALL_QUERY_NUMBERS, CHOKEPOINTS

from .profiler import TPCHProfiler

__all__ = ["StudyConfig", "ExperimentStudy", "EXPERIMENT_IDS"]

EXPERIMENT_IDS = (
    "table1", "fig2", "table2", "fig3_sf1", "table3", "fig3_sf10",
    "fig4", "fig5", "fig6", "fig7",
)


@dataclass(frozen=True)
class StudyConfig:
    """Knobs for the study harness.

    Attributes:
        base_sf: scale factor actually generated and executed.
        seed: dbgen seed.
        cluster_sizes: WIMPI sizes evaluated at SF 10 (paper: 4-24).
        sf1 / sf10: the nominal scale factors reported.
    """

    base_sf: float = 0.05
    seed: int = 42
    cluster_sizes: tuple[int, ...] = (4, 8, 12, 16, 20, 24)
    sf1: float = 1.0
    sf10: float = 10.0


class ExperimentStudy:
    """Runs the paper's full experimental study on the simulated testbed."""

    def __init__(self, config: StudyConfig | None = None):
        self.config = config or StudyConfig()
        self.profiler = TPCHProfiler(self.config.base_sf, self.config.seed)
        self.model = PerformanceModel()
        self._cache: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Table I / Fig. 2
    # ------------------------------------------------------------------

    def table1(self) -> list[dict]:
        """The hardware catalog as rows (Table I)."""
        rows = []
        for key in ALL_KEYS:
            spec = PLATFORMS[key]
            rows.append({
                "name": key,
                "category": spec.category,
                "cpu": spec.cpu,
                "frequency_ghz": spec.freq_ghz,
                "cores": spec.cores,
                "llc_mb": spec.llc_mb,
                "msrp_usd": spec.msrp_usd,
                "hourly_usd": spec.hourly_usd,
                "tdp_w": spec.tdp_w,
            })
        return rows

    def fig2(self) -> dict:
        """Microbenchmark matrix plus the network measurement."""
        if "fig2" not in self._cache:
            self._cache["fig2"] = {
                "micro": run_microbench(),
                "network_mbps": network_bandwidth_mbps(),
            }
        return self._cache["fig2"]

    # ------------------------------------------------------------------
    # TPC-H SF 1 (Table II, Fig. 3 left)
    # ------------------------------------------------------------------

    def table2(self) -> dict[str, dict[int, float]]:
        """Modeled SF 1 runtimes: 22 queries x all 10 platforms."""
        if "table2" not in self._cache:
            profiles = self.profiler.profiles(ALL_QUERY_NUMBERS, self.config.sf1)
            self._cache["table2"] = {
                key: {
                    n: self.model.predict(profiles[n], PLATFORMS[key])
                    for n in ALL_QUERY_NUMBERS
                }
                for key in ALL_KEYS
            }
        return self._cache["table2"]

    def fig3_sf1(self) -> dict[str, dict[int, float]]:
        """SF 1 relative performance of the single Pi vs. every server."""
        table = self.table2()
        servers = {k: v for k, v in table.items() if k != PI_KEY}
        return speedup_table(servers, table[PI_KEY])

    # ------------------------------------------------------------------
    # TPC-H SF 10 (Table III, Fig. 3 right)
    # ------------------------------------------------------------------

    def table3(self) -> dict:
        """SF 10: modeled server runtimes + real distributed WIMPI runs."""
        if "table3" not in self._cache:
            profiles = self.profiler.profiles(CHOKEPOINTS, self.config.sf10)
            servers = {
                key: {
                    n: self.model.predict(profiles[n], PLATFORMS[key])
                    for n in CHOKEPOINTS
                }
                for key in SERVER_KEYS
            }
            wimpi: dict[int, dict[int, float]] = {}
            details: dict[int, dict[int, object]] = {}
            for n_nodes in self.config.cluster_sizes:
                cluster = WimPiCluster(
                    n_nodes,
                    base_sf=self.config.base_sf,
                    target_sf=self.config.sf10,
                    seed=self.config.seed,
                    db=self.profiler.db,
                )
                wimpi[n_nodes] = {}
                details[n_nodes] = {}
                for number in CHOKEPOINTS:
                    run = cluster.run_query(number)
                    wimpi[n_nodes][number] = run.total_seconds
                    details[n_nodes][number] = run
            self._cache["table3"] = {
                "servers": servers,
                "wimpi": wimpi,
                "runs": details,
            }
        return self._cache["table3"]

    def fig3_sf10(self) -> dict[int, dict[str, dict[int, float]]]:
        """SF 10 relative performance of WIMPI (per cluster size) vs.
        every server."""
        data = self.table3()
        out = {}
        for n_nodes, pi_runtimes in data["wimpi"].items():
            out[n_nodes] = speedup_table(data["servers"], pi_runtimes)
        return out

    # ------------------------------------------------------------------
    # Fig. 4
    # ------------------------------------------------------------------

    def fig4(self):
        """Execution-strategy matrix (single-threaded, SF 1)."""
        if "fig4" not in self._cache:
            self._cache["fig4"] = run_matrix(self.profiler, target_sf=self.config.sf1)
        return self._cache["fig4"]

    # ------------------------------------------------------------------
    # Figs. 5-7 (normalized analyses)
    # ------------------------------------------------------------------

    def fig5(self) -> dict:
        """MSRP-normalized improvements (on-premises only, as in the
        paper: cloud SKUs have no MSRP)."""
        sf1 = {
            server: {
                q: msrp_improvement(server, seconds, self.table2()[PI_KEY][q])
                for q, seconds in self.table2()[server].items()
            }
            for server in ON_PREMISES
        }
        data = self.table3()
        sf10 = {
            server: {
                nodes: {
                    q: msrp_improvement(
                        server, data["servers"][server][q], runtimes[q], nodes
                    )
                    for q in CHOKEPOINTS
                }
                for nodes, runtimes in data["wimpi"].items()
            }
            for server in ON_PREMISES
        }
        return {"sf1": sf1, "sf10": sf10}

    def fig6(self) -> dict:
        """Hourly-cost-normalized improvements (cloud only, as in the
        paper: on-premises machines have no hourly price)."""
        sf1 = {
            server: {
                q: hourly_improvement(server, seconds, self.table2()[PI_KEY][q])
                for q, seconds in self.table2()[server].items()
            }
            for server in CLOUD
        }
        data = self.table3()
        sf10 = {
            server: {
                nodes: {
                    q: hourly_improvement(
                        server, data["servers"][server][q], runtimes[q], nodes
                    )
                    for q in CHOKEPOINTS
                }
                for nodes, runtimes in data["wimpi"].items()
            }
            for server in CLOUD
        }
        return {"sf1": sf1, "sf10": sf10}

    def fig7(self) -> dict:
        """Energy-normalized improvements (on-premises only: cloud TDP is
        not public)."""
        sf1 = {
            server: {
                q: energy_improvement(server, seconds, self.table2()[PI_KEY][q])
                for q, seconds in self.table2()[server].items()
            }
            for server in ON_PREMISES
        }
        data = self.table3()
        sf10 = {
            server: {
                nodes: {
                    q: energy_improvement(
                        server, data["servers"][server][q], runtimes[q], nodes
                    )
                    for q in CHOKEPOINTS
                }
                for nodes, runtimes in data["wimpi"].items()
            }
            for server in ON_PREMISES
        }
        return {"sf1": sf1, "sf10": sf10}

    # ------------------------------------------------------------------

    def run(self, experiment_id: str):
        """Run one experiment by id (see module docstring)."""
        if experiment_id not in EXPERIMENT_IDS:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; known: {EXPERIMENT_IDS}"
            )
        return getattr(self, experiment_id)()

    def run_all(self) -> dict[str, object]:
        """Run the full study (every table and figure)."""
        return {eid: self.run(eid) for eid in EXPERIMENT_IDS}
