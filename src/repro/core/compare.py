"""Paper-vs-measured shape comparison.

The reproduction's claim is *shape* fidelity — who wins, by roughly what
factor, where crossovers fall — not digit fidelity (the substrate is a
calibrated model, not the authors' silicon). These helpers quantify it.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass

__all__ = ["ShapeComparison", "compare_grids", "agreement_on_winner",
           "geometric_mean_ratio"]


@dataclass(frozen=True)
class ShapeComparison:
    """Aggregate agreement between two runtime grids."""

    cells: int
    median_abs_log_ratio: float
    p90_abs_log_ratio: float
    spearman_like: float

    @property
    def median_factor(self) -> float:
        """Median multiplicative discrepancy (1.0 = perfect)."""
        return math.exp(self.median_abs_log_ratio)

    @property
    def p90_factor(self) -> float:
        return math.exp(self.p90_abs_log_ratio)


def _rank(values: list[float]) -> list[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    for rank, idx in enumerate(order):
        ranks[idx] = float(rank)
    return ranks


def compare_grids(
    measured: dict[str, dict[int, float]],
    published: dict[str, dict[int, float]],
) -> ShapeComparison:
    """Compare two {platform: {query: seconds}} grids cell by cell."""
    logs: list[float] = []
    m_flat: list[float] = []
    p_flat: list[float] = []
    for platform, per in published.items():
        if platform not in measured:
            continue
        for query, obs in per.items():
            if query in measured[platform]:
                pred = measured[platform][query]
                logs.append(abs(math.log(pred / obs)))
                m_flat.append(pred)
                p_flat.append(obs)
    if not logs:
        raise ValueError("grids share no cells")
    # Rank correlation across all cells (does the measured grid order
    # runtimes the same way the paper does?).
    mr, pr = _rank(m_flat), _rank(p_flat)
    n = len(mr)
    mean = (n - 1) / 2
    cov = sum((a - mean) * (b - mean) for a, b in zip(mr, pr))
    var = sum((a - mean) ** 2 for a in mr)
    rho = cov / var if var else 1.0
    logs.sort()
    return ShapeComparison(
        cells=n,
        median_abs_log_ratio=statistics.median(logs),
        p90_abs_log_ratio=logs[min(n - 1, int(0.9 * n))],
        spearman_like=rho,
    )


def agreement_on_winner(
    measured: dict[str, dict[int, float]],
    published: dict[str, dict[int, float]],
) -> float:
    """Fraction of queries whose fastest platform matches the paper's."""
    queries = sorted({
        q for per in published.values() for q in per
        if all(q in measured.get(p, {}) for p in published)
    })
    if not queries:
        raise ValueError("no common queries")
    hits = 0
    for q in queries:
        paper_winner = min(published, key=lambda p: published[p][q])
        our_winner = min(published, key=lambda p: measured[p][q])
        hits += paper_winner == our_winner
    return hits / len(queries)


def geometric_mean_ratio(
    measured: dict[int, float], published: dict[int, float]
) -> float:
    """Geometric mean of measured/published over shared keys."""
    logs = [
        math.log(measured[k] / published[k])
        for k in published
        if k in measured
    ]
    if not logs:
        raise ValueError("no shared keys")
    return math.exp(sum(logs) / len(logs))
