"""Extension experiments — the paper's discussion-section proposals,
built and measured (DESIGN.md lists them as optional scope):

* §III-C2 — aggressive compression to relieve the Pi's memory-bandwidth
  bottleneck (:func:`compression_study`);
* §III-C1 — the NAM hybrid cluster with a network-attached memory server
  (:func:`nam_study`);
* §III-B2 / §IV-B — energy proportionality: powering nodes on and off to
  track load (:func:`proportionality_study`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import WimPiCluster
from repro.cluster.nam import NamCluster
from repro.engine import DEFAULT_SETTINGS, Database, execute
from repro.engine.compression import compress_table, compression_ratio
from repro.hardware import EnergyModel, PLATFORMS, PerformanceModel
from repro.tpch import generate, get_query

__all__ = [
    "CompressionResult",
    "compression_study",
    "nam_study",
    "proportionality_study",
]


@dataclass
class CompressionResult:
    """Single-node compression outcome for one query/platform."""

    query: int
    platform: str
    plain_seconds: float
    compressed_seconds: float

    @property
    def speedup(self) -> float:
        return self.plain_seconds / self.compressed_seconds


def compression_study(
    base_sf: float = 0.02,
    target_sf: float = 10.0,
    queries: tuple[int, ...] = (1, 6, 14, 19),
    platforms: tuple[str, ...] = ("pi3b+", "op-e5"),
    seed: int = 42,
) -> dict:
    """Measure the §III-C2 trade on single nodes and on the cluster.

    Returns a dict with:
        ``ratio`` — whole-lineitem compression ratio;
        ``single_node`` — list of :class:`CompressionResult`;
        ``cliff`` — Q1 runtime at 4 nodes, plain vs compressed (the
        memory-pressure cliff should soften or vanish).
    """
    db = generate(base_sf, seed=seed)
    compressed = Database("tpch_compressed")
    for name in db.table_names:
        compressed.add(compress_table(db.table(name)))

    model = PerformanceModel()
    scale = target_sf / base_sf
    results: list[CompressionResult] = []
    # The study prices §III-C2's trade as the paper states it: stream
    # fewer bytes, pay decode cycles. Compressed execution (which skips
    # the decode entirely for sargable predicates) would hide the very
    # cycles being measured, so it is pinned off here; its own win is
    # measured by benchmarks/bench_compressed.py.
    decode_settings = DEFAULT_SETTINGS.without_compressed()
    for number in queries:
        query = get_query(number)
        plain = execute(db, query.build(db, {"sf": base_sf}))
        packed = execute(
            compressed, query.build(compressed, {"sf": base_sf}),
            settings=decode_settings,
        )
        for key in platforms:
            results.append(CompressionResult(
                query=number,
                platform=key,
                plain_seconds=model.predict(plain.profile.scaled(scale), PLATFORMS[key]),
                compressed_seconds=model.predict(packed.profile.scaled(scale), PLATFORMS[key]),
            ))

    cliff = {}
    for compress in (False, True):
        cluster = WimPiCluster(
            4, base_sf=base_sf, target_sf=target_sf, db=db, compress=compress
        )
        run = cluster.run_query(1)
        cliff["compressed" if compress else "plain"] = {
            "seconds": run.total_seconds,
            "pressure": max(run.node_pressure),
        }

    return {
        "ratio": compression_ratio(compressed.table("lineitem")),
        "single_node": results,
        "cliff": cliff,
    }


def nam_study(
    base_sf: float = 0.02,
    target_sf: float = 10.0,
    n_nodes: int = 4,
    queries: tuple[int, ...] = (1, 3, 5, 13),
    seed: int = 42,
) -> dict:
    """Compare plain WIMPI against the NAM hybrid at a thrash-prone
    cluster size. Returns per-query plain/hybrid runtimes, which nodes
    offloaded, and the hybrid's cost/power deltas."""
    db = generate(base_sf, seed=seed)
    plain = WimPiCluster(n_nodes, base_sf=base_sf, target_sf=target_sf, db=db)
    hybrid = NamCluster(n_nodes, base_sf=base_sf, target_sf=target_sf, db=db)
    per_query = {}
    for number in queries:
        base = plain.run_query(number)
        nam = hybrid.run_query(number)
        per_query[number] = {
            "plain_seconds": base.total_seconds,
            "nam_seconds": nam.total_seconds,
            "offloaded_nodes": len(nam.offloaded_nodes),
        }
    return {
        "queries": per_query,
        "plain_msrp": plain.total_msrp_usd,
        "nam_msrp": hybrid.total_msrp_usd,
        "plain_power_w": plain.peak_power_w,
        "nam_power_w": hybrid.peak_power_w,
    }


def proportionality_study(
    utilization_trace: list[float] | None = None,
    n_nodes: int = 24,
) -> dict:
    """Energy over a daily load trace: a WIMPI cluster that powers nodes
    off when idle vs. an always-on server (§III-B2's argument).

    Returns watt-hours for (a) the cluster with per-node power control,
    (b) the cluster always-on, (c) op-e5 always-on at the load-matched
    utilization, plus the proportionality curves.
    """
    if utilization_trace is None:
        # A bursty 24-hour analytics trace: quiet nights, busy afternoons.
        utilization_trace = [
            0.05, 0.05, 0.05, 0.05, 0.05, 0.10, 0.20, 0.40,
            0.60, 0.80, 0.90, 1.00, 0.95, 0.90, 0.85, 0.80,
            0.70, 0.55, 0.40, 0.30, 0.20, 0.10, 0.05, 0.05,
        ]
    model = EnergyModel()
    pi = PLATFORMS["pi3b+"]
    server = PLATFORMS["op-e5"]

    cluster_scaled = sum(
        model.proportionality_curve(pi, [u], nodes=n_nodes)[0]
        for u in utilization_trace
    )
    cluster_always_on = len(utilization_trace) * model.active_power(pi, nodes=n_nodes)
    server_curve = sum(
        model.proportionality_curve(server, [u])[0] for u in utilization_trace
    )
    return {
        "trace_hours": len(utilization_trace),
        "cluster_scaled_wh": cluster_scaled,
        "cluster_always_on_wh": cluster_always_on,
        "server_wh": server_curve,
        "savings_vs_always_on": 1 - cluster_scaled / cluster_always_on,
        "savings_vs_server": 1 - cluster_scaled / server_curve,
    }
