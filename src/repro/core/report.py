"""One-shot textual study report: every artifact plus paper comparison.

``full_report(study)`` renders the complete reproduction — Table I
through Fig. 7, the shape statistics against the published numbers, and
the extension studies — as one plain-text document.
"""

from __future__ import annotations

import statistics

from repro.analysis import median_relative, render_matrix, render_runtime_table, render_series, speedup_table
from repro.hardware import CLOUD, ON_PREMISES, PI_KEY

from .compare import compare_grids
from .paperdata import TABLE2_SF1_RUNTIMES, TABLE3_WIMPI_RUNTIMES
from .study import ExperimentStudy

__all__ = ["full_report"]


def _header(title: str) -> str:
    bar = "=" * len(title)
    return f"\n{bar}\n{title}\n{bar}\n"


def full_report(study: ExperimentStudy, include_extensions: bool = False) -> str:
    """Render the whole study (optionally including the extension
    experiments, which add a few seconds of runtime)."""
    parts: list[str] = []
    parts.append(_header("Reproduction report — In-Memory OLAP on 'Wimpy' Nodes"))
    parts.append(
        f"base scale factor {study.config.base_sf:g}; cluster sizes "
        f"{study.config.cluster_sizes}; all runtimes are model outputs over "
        "really-executed queries (see DESIGN.md)."
    )

    # Table I ------------------------------------------------------------
    parts.append(_header("Table I — hardware"))
    rows = [
        (r["name"], r["category"], f'{r["frequency_ghz"]:g} GHz', r["cores"],
         f'{r["llc_mb"]:g} MB')
        for r in study.table1()
    ]
    parts.append(render_matrix(rows, ["name", "category", "freq", "cores", "LLC"]))

    # Fig 2 ---------------------------------------------------------------
    parts.append(_header("Fig. 2 — microbenchmarks"))
    micro = study.fig2()["micro"]
    pi = micro[PI_KEY]
    parts.append(render_matrix(
        [
            (m.platform,
             round(m.whetstone_mwips_1core / pi.whetstone_mwips_1core, 2),
             round(m.dhrystone_dmips_1core / pi.dhrystone_dmips_1core, 2),
             round(pi.sysbench_s_1core / m.sysbench_s_1core, 2),
             round(m.membw_gbs_1core / pi.membw_gbs_1core, 1),
             round(m.membw_gbs_all / pi.membw_gbs_all, 1))
            for m in micro.values() if m.platform != PI_KEY
        ],
        ["platform", "whet-1c/pi", "dhry-1c/pi", "sysb-1c/pi", "bw-1c/pi", "bw-all/pi"],
        title="ratios vs the Raspberry Pi 3B+",
    ))
    parts.append(f"network: {study.fig2()['network_mbps']:.0f} Mbps node-to-node")

    # Table II -------------------------------------------------------------
    parts.append(_header("Table II — TPC-H SF 1"))
    table2 = study.table2()
    parts.append(render_runtime_table(table2, title="modeled runtimes (s)"))
    comparison = compare_grids(table2, TABLE2_SF1_RUNTIMES)
    parts.append(
        f"\nvs paper: median factor {comparison.median_factor:.2f}x, "
        f"p90 {comparison.p90_factor:.2f}x, rank corr {comparison.spearman_like:.2f}"
    )
    servers = {k: v for k, v in table2.items() if k != PI_KEY}
    medians = median_relative(speedup_table(servers, table2[PI_KEY]))
    parts.append("Pi median relative performance: " + ", ".join(
        f"{k}={v:.2f}x" for k, v in sorted(medians.items())
    ))

    # Table III ------------------------------------------------------------
    parts.append(_header("Table III — TPC-H SF 10"))
    data = study.table3()
    grid = dict(data["servers"])
    for nodes, runtimes in data["wimpi"].items():
        grid[f"pi3b+ x{nodes}"] = runtimes
    parts.append(render_runtime_table(grid, title="modeled runtimes (s)"))
    wimpi_measured = {str(n): per for n, per in data["wimpi"].items()}
    wimpi_paper = {str(n): per for n, per in TABLE3_WIMPI_RUNTIMES.items()}
    wimpi_cmp = compare_grids(wimpi_measured, wimpi_paper)
    parts.append(
        f"\nWIMPI vs paper: median factor {wimpi_cmp.median_factor:.2f}x, "
        f"rank corr {wimpi_cmp.spearman_like:.2f}"
    )

    # Fig 4 -----------------------------------------------------------------
    parts.append(_header("Fig. 4 — execution strategies"))
    cells = {(r.platform, r.strategy, r.query): r.seconds for r in study.fig4()}
    queries = sorted({q for _, _, q in cells})
    rows = []
    for platform in ("op-e5", "op-gold", PI_KEY):
        for strategy in ("data-centric", "hybrid", "access-aware"):
            rows.append((platform, strategy) + tuple(
                round(cells[(platform, strategy, q)], 3) for q in queries
            ))
    parts.append(render_matrix(rows, ["platform", "strategy"] + [f"Q{q}" for q in queries]))

    # Figs 5-7 ----------------------------------------------------------------
    parts.append(_header("Figs. 5-7 — normalized comparisons (SF 1 medians)"))
    fig5, fig6, fig7 = study.fig5(), study.fig6(), study.fig7()
    summary_rows = []
    for server in ON_PREMISES:
        summary_rows.append((
            server,
            round(statistics.median(fig5["sf1"][server].values()), 1),
            "-",
            round(statistics.median(fig7["sf1"][server].values()), 1),
        ))
    for server in CLOUD:
        summary_rows.append((
            server, "-",
            round(statistics.median(fig6["sf1"][server].values())),
            "-",
        ))
    parts.append(render_matrix(
        summary_rows, ["server", "MSRP-x", "hourly-x", "energy-x"],
        title="median improvement of the Pi configuration (>1 favors the Pi)",
    ))

    if include_extensions:
        from .extensions import compression_study, nam_study, proportionality_study

        parts.append(_header("Extensions"))
        c = compression_study(base_sf=study.config.base_sf)
        parts.append(
            f"compression: lineitem ratio {c['ratio']:.2f}x; Q1@4 cliff "
            f"{c['cliff']['plain']['seconds']:.1f}s -> "
            f"{c['cliff']['compressed']['seconds']:.1f}s"
        )
        n = nam_study(base_sf=study.config.base_sf)
        parts.append(
            "NAM: " + ", ".join(
                f"Q{q} {row['plain_seconds']:.1f}s->{row['nam_seconds']:.2f}s"
                for q, row in sorted(n["queries"].items())
            )
        )
        p = proportionality_study()
        parts.append(
            f"power gating: {p['savings_vs_always_on']:.0%} energy saved vs "
            f"always-on, {p['savings_vs_server']:.0%} vs op-e5"
        )

    return "\n".join(parts) + "\n"
