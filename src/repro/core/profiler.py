"""Execute TPC-H queries at a small base scale factor and extrapolate
work profiles to the paper's nominal scale factors.

CPython is far too slow to *be* the in-memory OLAP core (the repro gate),
so queries run on the numpy engine at ``base_sf`` — producing real,
checkable results — and the hardware-independent work counts are scaled
linearly to the nominal SF (TPC-H work is linear in SF to first order).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import DEFAULT_SETTINGS, Database, Result, WorkProfile, execute
from repro.tpch import generate, get_query

__all__ = ["ProfiledQuery", "TPCHProfiler"]


@dataclass
class ProfiledQuery:
    """A query execution plus its profile scaled to the nominal SF."""

    number: int
    result: Result
    profile: WorkProfile
    base_sf: float
    target_sf: float


class TPCHProfiler:
    """Profiles TPC-H queries against a generated database.

    Args:
        base_sf: scale factor actually executed (default 0.05 — large
            enough that per-query selectivities are stable, small enough
            to run in seconds).
        seed: dbgen seed.
        settings: optimizer settings the profiling runs use. Defaults to
            the eager (no late-materialization) pipeline: the paper
            profiles MonetDB, which fully materializes every
            intermediate, so fidelity artifacts (Tables II/III, Figs.
            3-7) are modeled from eager work counts. Pass
            ``DEFAULT_SETTINGS`` to study the selection-vector engine
            instead.
        tracer: optional :class:`~repro.obs.trace.Tracer`; profiling
            executions contribute ``Q<n>``-labeled query spans.
    """

    def __init__(
        self, base_sf: float = 0.05, seed: int = 42, settings=None, tracer=None
    ):
        self.base_sf = base_sf
        self.seed = seed
        self.settings = (
            settings if settings is not None else DEFAULT_SETTINGS.without_latemat()
        )
        self.tracer = tracer
        self._db: Database | None = None
        self._cache: dict[tuple[int, float], ProfiledQuery] = {}

    @property
    def db(self) -> Database:
        if self._db is None:
            self._db = generate(self.base_sf, seed=self.seed)
        return self._db

    def profile(self, number: int, target_sf: float = 1.0) -> ProfiledQuery:
        """Execute query ``number`` at the base SF and return its result
        with the profile scaled to ``target_sf``."""
        key = (number, target_sf)
        if key not in self._cache:
            query = get_query(number)
            plan = query.build(self.db, {"sf": self.base_sf})
            result = execute(
                self.db, plan, settings=self.settings,
                tracer=self.tracer, label=f"Q{number}",
            )
            scaled = result.profile.scaled(target_sf / self.base_sf)
            self._cache[key] = ProfiledQuery(
                number=number,
                result=result,
                profile=scaled,
                base_sf=self.base_sf,
                target_sf=target_sf,
            )
        return self._cache[key]

    def profiles(self, numbers, target_sf: float = 1.0) -> dict[int, WorkProfile]:
        """Scaled profiles for a set of queries."""
        return {n: self.profile(n, target_sf).profile for n in numbers}
