"""Cube materialization: turning mined specs into in-engine tables.

A rollup cube is an *ordinary table*: it is built by the engine's own
aggregate kernel, stored through the normal :class:`Table` path, and
therefore inherits every storage feature the base tables have — zone
maps for skipping, optional dictionary/bit-packed compression, late
materialization on scans. The router (:mod:`repro.rollup.router`)
rewrites matching aggregations into plain scans of these tables, so no
new executor machinery is needed downstream.

Cost discipline: each cube's build runs through the serial executor and
its :class:`WorkProfile` is kept — the performance model charges it like
any other query — and each cube's bytes are reported so the cluster
memory model can tax the footprint. Cubes whose cell count approaches
the source cardinality are discarded: a "rollup" that barely reduces
rows (Q6's near-unique filter columns) costs memory without saving scan
work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.executor import Executor
from repro.engine.optimizer import DEFAULT_SETTINGS
from repro.engine.plan import AggregateNode, PlanNode, ScanNode
from repro.engine.profile import WorkProfile
from repro.engine.table import Table
from repro.obs.metrics import metrics

from .miner import CubeSpec, WorkloadMiner, default_workload_plans
from .shapes import ROLLUP_PREFIX, storage_aggs

__all__ = [
    "Cube",
    "RollupCatalog",
    "build_rollups",
    "enable_rollups",
    "refresh_rollup_gauges",
    "MAX_CUBE_CELLS",
    "MAX_CELL_FRACTION",
]

# Hard ceiling on cells per cube: beyond this a cube stops being "a few
# pages the dashboard re-reads" and starts competing with base tables
# for wimpy-node memory.
MAX_CUBE_CELLS = 65536

# A cube must shrink its source by at least this factor (except for tiny
# sources, where the max(64, ...) floor applies) to be worth keeping.
MAX_CELL_FRACTION = 0.5


def _scan_tables(node: PlanNode):
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ScanNode):
            yield current.table
        stack.extend(current.children())


@dataclass
class Cube:
    """One materialized rollup: its table plus routing metadata."""

    name: str
    spec: CubeSpec
    table: Table
    colmap: dict[tuple[str, str], str]

    @property
    def source_key(self) -> str:
        return self.spec.source_key

    @property
    def dims(self) -> tuple[str, ...]:
        return self.spec.dims

    @property
    def nrows(self) -> int:
        return self.table.nrows

    @property
    def nbytes(self) -> int:
        return self.table.nbytes

    def parts_for(self, measure_key: str) -> set[str]:
        stored = self.spec.measures.get(measure_key)
        return set() if stored is None else set(stored[1])


@dataclass
class RollupCatalog:
    """All cubes built for one database, with lookup indexes and the
    total build cost/footprint the models charge."""

    cubes: list[Cube] = field(default_factory=list)
    build_profile: WorkProfile = field(default_factory=WorkProfile)
    build_wall_seconds: float = 0.0
    candidates_considered: int = 0
    candidates_rejected: int = 0

    def __post_init__(self):
        self._by_name = {cube.name: cube for cube in self.cubes}
        self._by_source: dict[str, list[Cube]] = {}
        for cube in self.cubes:
            self._by_source.setdefault(cube.source_key, []).append(cube)

    def _register(self, cube: Cube) -> None:
        self.cubes.append(cube)
        self._by_name[cube.name] = cube
        self._by_source.setdefault(cube.source_key, []).append(cube)

    def table(self, name: str) -> Table | None:
        cube = self._by_name.get(name)
        return cube.table if cube is not None else None

    def cubes_for(self, source_key: str) -> list[Cube]:
        """Cubes over one canonical source, smallest first — the router
        prefers the tightest subsuming cube."""
        return sorted(
            self._by_source.get(source_key, ()), key=lambda c: (c.nrows, c.name)
        )

    @property
    def nbytes(self) -> int:
        return sum(cube.nbytes for cube in self.cubes)

    @property
    def total_cells(self) -> int:
        return sum(cube.nrows for cube in self.cubes)

    def stats(self) -> dict:
        return {
            "cubes": len(self.cubes),
            "cells": self.total_cells,
            "bytes": self.nbytes,
            "candidates_considered": self.candidates_considered,
            "candidates_rejected": self.candidates_rejected,
        }

    def __len__(self) -> int:
        return len(self.cubes)


def build_rollups(
    db,
    specs: list[CubeSpec],
    settings=None,
    max_cells: int = MAX_CUBE_CELLS,
    max_cell_fraction: float = MAX_CELL_FRACTION,
    compress: bool = False,
    start_index: int = 0,
) -> RollupCatalog:
    """Materialize mined cube specs as catalog tables.

    ``specs`` arrive widest-dimension-set-first (the miner's order); a
    candidate subsumed by an already-kept cube is skipped, and a
    candidate whose cell count breaks the cardinality guard is rejected
    after the fact. Builds run through the plain serial executor with
    rollups disabled (a cube never routes through another cube).
    """
    settings = (settings or DEFAULT_SETTINGS).without_rollups()
    executor = Executor(db, settings)
    catalog = RollupCatalog()
    for spec in specs:
        catalog.candidates_considered += 1
        if any(kept.spec.subsumes(spec) for kept in catalog.cubes):
            continue
        source_rows = [
            db.table(t).nrows for t in _scan_tables(spec.source) if t in db
        ]
        if not source_rows:
            catalog.candidates_rejected += 1
            continue
        cell_budget = min(
            max_cells, max(64, int(max(source_rows) * max_cell_fraction))
        )
        agg_specs, colmap = storage_aggs(spec.measures)
        plan = AggregateNode(
            spec.source, spec.dims, tuple(sorted(agg_specs.items()))
        )
        try:
            result = executor.execute(plan, label=f"rollup-build:{spec.source_key[:8]}")
        except Exception:
            catalog.candidates_rejected += 1
            continue
        if result.frame.nrows > cell_budget:
            catalog.candidates_rejected += 1
            continue
        name = (
            f"{ROLLUP_PREFIX}{start_index + len(catalog.cubes):02d}"
            f"_{spec.source_key[:8]}"
        )
        table = Table(name, dict(result.frame.columns))
        if compress:
            from repro.engine.compression import compress_table

            table = compress_table(table)
            table.name = name
        if table.nrows > 0:
            table.build_zone_maps()
        catalog._register(Cube(name, spec, table, colmap))
        catalog.build_profile.absorb(result.profile)
        catalog.build_wall_seconds += result.wall_seconds
    refresh_rollup_gauges(catalog)
    return catalog


def refresh_rollup_gauges(catalog: RollupCatalog) -> None:
    """Publish catalog size into the metrics registry (rollup.cubes /
    rollup.bytes gauges)."""
    metrics.gauge("rollup.cubes").set(float(len(catalog.cubes)))
    metrics.gauge("rollup.bytes").set(float(catalog.nbytes))


def enable_rollups(
    db,
    plans=None,
    settings=None,
    compress: bool = False,
    min_count: int = 1,
    max_cells: int = MAX_CUBE_CELLS,
    max_cell_fraction: float = MAX_CELL_FRACTION,
) -> RollupCatalog:
    """Mine a workload, build its cubes, and attach them to ``db``.

    With no explicit ``plans`` the default template workload (all TPC-H
    and ad-events queries whose tables exist) seeds the miner — the
    load-time path. Returns the catalog, which is also installed as
    ``db.rollups`` so the optimizer's router starts using it.
    """
    miner = WorkloadMiner(db)
    if plans is None:
        plans = default_workload_plans(db)
    for plan in plans:
        miner.observe(plan, settings=settings)
    catalog = build_rollups(
        db,
        miner.mine(min_count=min_count),
        settings=settings,
        max_cells=max_cells,
        max_cell_fraction=max_cell_fraction,
        compress=compress,
    )
    db.rollups = catalog
    return catalog
