"""Workload-adaptive rollups: mined cubes, semantic routing, and the
subsumption-aware result cache.

The paper's wimpy-node thesis is that OLAP fleets are provisioned for
*repeated* analytical workloads — dashboards, reports, monitoring — not
one-off exploration. This package exploits the repetition: mine the
workload's canonical aggregate shapes (:mod:`.miner`), materialize small
cubes for them as ordinary in-engine tables at load time (:mod:`.builder`),
route matching queries onto those cubes with a provable subsumption test
(:mod:`.router`), and answer literal-only re-runs from a semantic result
cache that re-slices a finer cached aggregate (:mod:`.semantic`).

Entry point::

    from repro.rollup import enable_rollups
    enable_rollups(db)          # mine templates, build cubes, attach

After that, ``OptimizerSettings.rollups`` (on by default; ``--no-rollups``
to ablate) makes the optimizer route eligible aggregations automatically.
"""

from .builder import (
    MAX_CELL_FRACTION,
    MAX_CUBE_CELLS,
    Cube,
    RollupCatalog,
    build_rollups,
    enable_rollups,
)
from .miner import CubeSpec, WorkloadMiner, default_workload_plans
from .router import ROUTER_STATS, route_plan, routed_tables, try_route_aggregate
from .semantic import (
    MAX_SEMANTIC_CELLS,
    SEMANTIC_TABLE,
    SemanticPlan,
    run_residual,
    semantic_plan,
)
from .shapes import (
    ROLLUP_PREFIX,
    SUPPORTED_FUNCS,
    AggShape,
    aggregate_shape,
    derived_rewrite,
    expr_key,
    source_key,
    storage_aggs,
)

__all__ = [
    "AggShape",
    "Cube",
    "CubeSpec",
    "MAX_CELL_FRACTION",
    "MAX_CUBE_CELLS",
    "MAX_SEMANTIC_CELLS",
    "ROLLUP_PREFIX",
    "ROUTER_STATS",
    "RollupCatalog",
    "SEMANTIC_TABLE",
    "SUPPORTED_FUNCS",
    "SemanticPlan",
    "WorkloadMiner",
    "aggregate_shape",
    "build_rollups",
    "default_workload_plans",
    "derived_rewrite",
    "enable_rollups",
    "expr_key",
    "route_plan",
    "routed_tables",
    "run_residual",
    "semantic_plan",
    "source_key",
    "storage_aggs",
    "try_route_aggregate",
]
