"""Subsumption-aware semantic result cache.

The plan-fingerprint :class:`~repro.engine.cache.ResultCache` only hits
on *identical* plans — a dashboard that re-runs Q1 with a new date
cutoff misses every time, because the literal is part of the
fingerprint. The semantic layer fixes that: it caches a **finer
aggregate** — the query's canonical source grouped by the query's group
keys *plus every filtered column*, holding decomposable per-cell states
— keyed by a fingerprint that contains *no filter literals*. Any re-run
of the same shape, whatever its literals, re-slices the cached cells:
re-filter on the dimension columns, re-merge the states, recompose
AVG = SUM/COUNT. The re-slice touches thousands of cells instead of
millions of base rows.

Soundness is inherited from the rollup algebra (:mod:`.shapes`): the
split only applies when the aggregation canonicalizes, its filters are
provably hoistable, and its measures decompose exactly. Everything else
falls through to normal execution untouched. Oversized slices (finer
cell counts near the source cardinality) are negatively cached so the
shape is not re-attempted.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.engine.executor import Executor
from repro.engine.expr import Expr, ScalarSubquery
from repro.engine.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.engine.table import Database, Table

from .shapes import AggShape, aggregate_shape, derived_rewrite, storage_aggs

__all__ = [
    "SEMANTIC_TABLE",
    "MAX_SEMANTIC_CELLS",
    "SemanticPlan",
    "semantic_plan",
    "run_residual",
]

# Name of the transient table the residual re-slice scans.
SEMANTIC_TABLE = "__semantic_cells"

# Cells beyond this defeat the purpose (the re-slice would rival the
# base scan); the shape is negatively cached instead.
MAX_SEMANTIC_CELLS = 65536

# Plan nodes that may sit between the plan root and the aggregation
# being cached; they are peeled off and re-applied to the residual.
_WRAPPERS = (SortNode, LimitNode, ProjectNode, FilterNode, DistinctNode)


@dataclass(frozen=True)
class SemanticPlan:
    """A query split into a literal-free finer aggregate (cacheable)
    and the query-specific residual that re-slices it."""

    wrappers: tuple[PlanNode, ...]
    shape: AggShape
    finer: AggregateNode
    colmap: dict

    @property
    def cache_suffix(self) -> str:
        return "#semantic"


def _contains_subquery(expr: Expr) -> bool:
    if isinstance(expr, ScalarSubquery):
        return True
    for value in vars(expr).values():
        if isinstance(value, Expr) and _contains_subquery(value):
            return True
        if isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Expr) and _contains_subquery(item):
                    return True
    return False


def _residual_exprs(wrappers, shape: AggShape):
    """Every expression the residual re-evaluates against the scratch
    database (hoisted conjuncts plus wrapper predicates/projections)."""
    yield from shape.conjuncts
    for wrapper in wrappers:
        if isinstance(wrapper, FilterNode):
            yield wrapper.predicate
        elif isinstance(wrapper, ProjectNode):
            for _, expr in wrapper.exprs:
                yield expr


def semantic_plan(node: PlanNode, db) -> SemanticPlan | None:
    """Split an optimized plan, or ``None`` when the plan's aggregation
    cannot be canonicalized (then the caller just executes normally).

    Requires at least one hoisted filter conjunct: without one, the
    finer aggregate IS the query and the ordinary fingerprint cache
    already handles re-runs.
    """
    wrappers: list[PlanNode] = []
    current = node
    while isinstance(current, _WRAPPERS):
        wrappers.append(current)
        current = current.child
    if not isinstance(current, AggregateNode):
        return None
    shape = aggregate_shape(current, db)
    if shape is None or not shape.conjuncts:
        return None
    if any(_contains_subquery(e) for e in _residual_exprs(wrappers, shape)):
        # The residual executes against a scratch database holding only
        # the cached cells; embedded subqueries need the real catalog.
        return None
    specs, colmap = storage_aggs(shape.measures())
    finer = AggregateNode(shape.source, shape.dims, tuple(sorted(specs.items())))
    return SemanticPlan(tuple(wrappers), shape, finer, colmap)


def residual_plan(sp: SemanticPlan) -> PlanNode:
    """The re-slice: filter cached cells by the query's literals,
    re-merge states to the query's grouping, recompose measures, and
    re-apply the peeled wrappers (sorts, limits, projections)."""
    shape = sp.shape
    predicate = None
    for conjunct in shape.conjuncts:
        predicate = conjunct if predicate is None else (predicate & conjunct)
    inner_aggs, projections = derived_rewrite(shape.aggs, shape.group_by, sp.colmap)
    node: PlanNode = ScanNode(SEMANTIC_TABLE, None, None)
    node = FilterNode(node, predicate)
    node = AggregateNode(node, shape.group_by, inner_aggs)
    node = ProjectNode(node, projections)
    for wrapper in reversed(sp.wrappers):
        node = dataclasses.replace(wrapper, child=node)
    return node


def run_residual(sp: SemanticPlan, finer_frame, settings):
    """Execute the re-slice over a cached finer frame; returns the
    engine :class:`~repro.engine.result.Result`."""
    cells = Table(SEMANTIC_TABLE, dict(finer_frame.columns))
    scratch = Database("__semantic")
    scratch.add(cells)
    executor = Executor(scratch, settings.without_rollups())
    return executor.execute(residual_plan(sp), label="semantic-reslice")
