"""Workload mining: canonical aggregate shapes worth materializing.

The miner watches plans — the 22 TPC-H + 11 ad-events templates at load
time, live :class:`~repro.serve.QueryServer` traffic afterwards —
canonicalizes every aggregation it sees (:mod:`repro.rollup.shapes`),
and accumulates per-shape observation counts. ``mine()`` turns the
accumulated shapes into :class:`CubeSpec` candidates: one cube per
distinct (source, dimension-set) pair, with the measure set unioned
across every observation that shares it.

Literals never reach the miner: a Q1 with cutoff ``1998-09-02`` and a
re-run with ``1998-08-01`` count as two observations of one shape, which
is the whole point — the shipped cube carries the filter column as a
dimension and answers both.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.engine.optimizer import DEFAULT_SETTINGS, optimize_plan
from repro.engine.plan import AggregateNode, PlanNode, Q

from .shapes import AggShape, aggregate_shape

__all__ = ["CubeSpec", "WorkloadMiner", "default_workload_plans"]


@dataclass
class CubeSpec:
    """One candidate cube: a canonical source, its dimensions, and the
    union of measures the observed workload asked of it."""

    source: PlanNode
    source_key: str
    dims: tuple[str, ...]
    measures: dict[str, tuple[object, set[str]]] = field(default_factory=dict)
    observations: int = 0

    def absorb(self, shape: AggShape) -> None:
        self.observations += 1
        for key, (expr, parts) in shape.measures().items():
            known_expr, known_parts = self.measures.get(key, (expr, set()))
            known_parts.update(parts)
            self.measures[key] = (known_expr, known_parts)

    def subsumes(self, other: "CubeSpec") -> bool:
        """True when this cube can answer everything ``other`` can."""
        if self.source_key != other.source_key:
            return False
        if not set(other.dims) <= set(self.dims):
            return False
        for key, (_, parts) in other.measures.items():
            mine = self.measures.get(key)
            if mine is None or not parts <= mine[1]:
                return False
        return True


def _walk_aggregates(node: PlanNode):
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, AggregateNode):
            yield current
        stack.extend(current.children())


class WorkloadMiner:
    """Accumulates canonical aggregate shapes from observed plans."""

    def __init__(self, db):
        self.db = db
        self._lock = threading.Lock()
        self._specs: dict[tuple[str, tuple[str, ...]], CubeSpec] = {}

    def observe(self, plan: "Q | PlanNode", settings=None) -> int:
        """Mine one plan (pre-optimization); returns the number of
        aggregate shapes recorded. Never raises — a plan the optimizer or
        canonicalizer rejects simply contributes nothing."""
        node = plan.node if isinstance(plan, Q) else plan
        if node is None:
            return 0
        settings = (settings or DEFAULT_SETTINGS).without_rollups()
        try:
            optimized = optimize_plan(node, self.db, settings)
        except Exception:
            return 0
        return self.observe_optimized(optimized)

    def observe_optimized(self, node: PlanNode) -> int:
        """Mine an already-optimized (but unrouted) plan."""
        recorded = 0
        for aggregate in _walk_aggregates(node):
            try:
                shape = aggregate_shape(aggregate, self.db)
            except Exception:
                shape = None
            if shape is None:
                continue
            with self._lock:
                spec = self._specs.get((shape.key, shape.dims))
                if spec is None:
                    spec = CubeSpec(shape.source, shape.key, shape.dims)
                    self._specs[(shape.key, shape.dims)] = spec
                spec.absorb(shape)
            recorded += 1
        return recorded

    def mine(self, min_count: int = 1) -> list[CubeSpec]:
        """Candidate cubes seen at least ``min_count`` times, widest
        dimension sets first (the builder skips candidates an
        already-built cube subsumes), deterministically ordered."""
        with self._lock:
            specs = [s for s in self._specs.values() if s.observations >= min_count]
        return sorted(specs, key=lambda s: (s.source_key, -len(s.dims), s.dims))

    def __len__(self) -> int:
        with self._lock:
            return len(self._specs)


def default_workload_plans(db) -> list[PlanNode]:
    """The template workload for load-time seeding: every TPC-H and
    ad-events query whose tables exist in ``db``. Templates that fail to
    build (missing tables, parameter quirks) are skipped — seeding must
    never block a load."""
    plans: list[PlanNode] = []
    if "lineitem" in db:
        from repro.tpch import ALL_QUERY_NUMBERS, get_query

        for number in ALL_QUERY_NUMBERS:
            try:
                plans.append(get_query(number).build(db, {"sf": 1.0}).node)
            except Exception:
                continue
    if "events" in db:
        from repro.adevents import QUERY_NAMES, build

        for name in QUERY_NAMES:
            try:
                built = build(db, name)
                plans.append(built.node if isinstance(built, Q) else built)
            except Exception:
                continue
    return plans
