"""Canonical aggregate shapes: the subsumption algebra behind rollups.

Everything in :mod:`repro.rollup` — the workload miner, the cube
builder, the router, and the semantic result cache — agrees on one
canonical form of "an aggregation over a filtered source":

* the **source** is the aggregate's child subtree with every filter
  removed (``FilterNode`` dropped, scan predicates cleared), scan column
  lists neutralized, identity projections elided, and projections widened
  with identity pass-throughs for every hoisted filter column;
* the **conjuncts** are the removed filter predicates, collected in
  deterministic plan order;
* the **shape** is that source plus the aggregate's group keys and
  measure expressions.

Two plans that differ only in filter literals (a Q1 re-run with a new
date cutoff, a dashboard sliced to a different day) canonicalize to the
same source key, which is exactly what lets one materialized cube — or
one cached finer aggregate — answer both.

Hoisting a conjunct out of the source is only done where it provably
commutes with the source's operators: through inner joins on either
side, through left/semi/anti joins on the probe side only, and through
projections via identity pass-throughs (widening the projection when the
column was pruned away). Aggregates, sorts, limits, DISTINCT, UNION ALL
and the non-probe side of outer/semi/anti joins are opaque barriers:
their subtrees are kept verbatim (literals included), so matching them
requires exact re-occurrence. Anything unprovable makes the whole shape
unmatchable — the conservative fallback the router's soundness rests on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.engine.expr import ColRef, Expr, col
from repro.engine.fingerprint import _canonical
from repro.engine.operators.aggregate import (
    AggSpec,
    count,
    count_star,
    max_,
    min_,
    sum_,
)
from repro.engine.optimizer import output_columns
from repro.engine.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    UnionAllNode,
)
from repro.engine.zonemap import split_conjuncts

__all__ = [
    "ROLLUP_PREFIX",
    "STAR_KEY",
    "SUPPORTED_FUNCS",
    "AggShape",
    "aggregate_shape",
    "derived_rewrite",
    "expr_key",
    "scans_rollup_table",
    "source_key",
    "storage_aggs",
]

# Namespace for materialized cube tables inside the database catalog.
ROLLUP_PREFIX = "__rollup_"

# Measure key for COUNT(*) (it has no input expression).
STAR_KEY = "__star__"

# Aggregate functions whose per-cell states recombine exactly:
# SUM/COUNT/MIN/MAX re-reduce, AVG decomposes into SUM + COUNT.
# COUNT(DISTINCT) is absent on purpose — its state is the distinct set.
SUPPORTED_FUNCS = {"sum", "avg", "count", "count_star", "min", "max"}

# Which stored parts each supported function needs per measure.
_FUNC_PARTS = {
    "sum": ("sum",),
    "count": ("cnt",),
    "avg": ("sum", "cnt"),
    "min": ("min",),
    "max": ("max",),
    "count_star": ("star",),
}

# Opaque barriers: kept verbatim, never hoisted through.
_OPAQUE = (AggregateNode, SortNode, LimitNode, DistinctNode, UnionAllNode)


class _Unmatchable(Exception):
    """The subtree cannot be canonicalized soundly; decline the shape."""


def _normalize_literals(canonical):
    """Fold integral numeric literals to floats inside a canonical expr
    structure, so ``price * (1 - disc)`` (SQL front-end) and
    ``price * (1.0 - disc)`` (template builders) share one measure key.
    Safe for measure matching: every supported aggregate of the two
    variants is numerically identical — engine arithmetic promotes the
    int literal against the float column either way, and ``/`` is always
    true division."""
    if isinstance(canonical, list):
        if (
            len(canonical) == 2
            and canonical[0] == "Literal"
            and isinstance(canonical[1], list)
        ):
            fields = [
                ["value", float(v)]
                if k == "value" and isinstance(v, int) and not isinstance(v, bool)
                else [k, _normalize_literals(v)]
                for k, v in canonical[1]
            ]
            return ["Literal", fields]
        return [_normalize_literals(item) for item in canonical]
    return canonical


def expr_key(expr: Expr | None) -> str:
    """Stable structural identity of a measure expression. Numeric
    literals are compared by value, not lexical type (see
    :func:`_normalize_literals`)."""
    if expr is None:
        return STAR_KEY
    return json.dumps(
        _normalize_literals(_canonical(expr)), sort_keys=True, default=str
    )


def source_key(source: PlanNode) -> str:
    """Stable identity of a canonical (stripped) source subtree."""
    payload = json.dumps(_canonical(source), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


def _strip(node: PlanNode) -> tuple[PlanNode, list[Expr]]:
    """Remove filters from a source subtree, collecting their conjuncts.

    Returns ``(stripped, conjuncts)``; raises :class:`_Unmatchable` when
    a conjunct cannot be hoisted soundly.
    """
    if isinstance(node, ScanNode):
        conjuncts = (
            split_conjuncts(node.predicate) if node.predicate is not None else []
        )
        return ScanNode(node.table, None, None), conjuncts

    if isinstance(node, FilterNode):
        child, conjuncts = _strip(node.child)
        return child, conjuncts + split_conjuncts(node.predicate)

    if isinstance(node, ProjectNode):
        child, conjuncts = _strip(node.child)
        exprs = list(node.exprs)
        out_names = {name for name, _ in exprs}
        identity = {
            name
            for name, expr in exprs
            if isinstance(expr, ColRef) and expr.name == name
        }
        for conjunct in conjuncts:
            for ref in sorted(conjunct.references()):
                if ref in identity:
                    continue
                if ref in out_names:
                    # An output of the same name computes something else;
                    # the conjunct would change meaning above this node.
                    raise _Unmatchable
                exprs.append((ref, ColRef(ref)))
                out_names.add(ref)
                identity.add(ref)
        if len(identity) == len(exprs):
            # Pure column selection: semantically irrelevant for the
            # source (the cube build re-prunes), so eliding it lets
            # queries with different pruned column sets share a key.
            return child, conjuncts
        return ProjectNode(child, tuple(exprs)), conjuncts

    if isinstance(node, JoinNode):
        left, conjuncts = _strip(node.left)
        if node.how == "inner":
            right, right_conjuncts = _strip(node.right)
            conjuncts = conjuncts + right_conjuncts
        else:
            # left/semi/anti: filtering the non-probe side changes which
            # probe rows survive, so that subtree stays verbatim.
            right = node.right
        return (
            JoinNode(left, right, node.left_on, node.right_on, node.how),
            conjuncts,
        )

    if isinstance(node, _OPAQUE):
        return node, []

    raise _Unmatchable


@dataclass(frozen=True)
class AggShape:
    """One aggregation in canonical form (see module docstring)."""

    source: PlanNode
    key: str
    conjuncts: tuple[Expr, ...]
    group_by: tuple[str, ...]
    aggs: tuple[tuple[str, AggSpec], ...]

    @property
    def conjunct_columns(self) -> set[str]:
        refs: set[str] = set()
        for conjunct in self.conjuncts:
            refs |= conjunct.references()
        return refs

    @property
    def dims(self) -> tuple[str, ...]:
        """Dimensions a cube must carry to answer this shape: group keys
        plus every filtered column (sorted, deduplicated)."""
        return tuple(sorted(set(self.group_by) | self.conjunct_columns))

    def measures(self) -> dict[str, tuple[Expr | None, set[str]]]:
        """Measure-expression key -> (expression, needed stored parts)."""
        out: dict[str, tuple[Expr | None, set[str]]] = {}
        for _, spec in self.aggs:
            key = expr_key(spec.expr)
            expr, parts = out.get(key, (spec.expr, set()))
            parts.update(_FUNC_PARTS[spec.func])
            out[key] = (expr, parts)
        return out


def scans_rollup_table(node: PlanNode) -> bool:
    """True when any scan in the subtree reads a materialized rollup."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ScanNode) and current.table.startswith(ROLLUP_PREFIX):
            return True
        stack.extend(current.children())
    return False


def aggregate_shape(node: AggregateNode, db) -> AggShape | None:
    """Canonicalize one AggregateNode, or ``None`` when it cannot be
    matched soundly (unhoistable filters, unsupported measures, scans of
    other rollups, ambiguous column names)."""
    if any(spec.func not in SUPPORTED_FUNCS for _, spec in node.aggs):
        return None
    if scans_rollup_table(node):
        return None
    try:
        source, conjuncts = _strip(node.child)
    except _Unmatchable:
        return None
    try:
        cols = output_columns(source, db)
    except (KeyError, TypeError):
        return None
    available = set(cols)
    if len(available) != len(cols):
        return None  # duplicate names after widening: ambiguous
    needed = set(node.group_by)
    for conjunct in conjuncts:
        needed |= conjunct.references()
    for _, spec in node.aggs:
        if spec.expr is not None:
            needed |= spec.expr.references()
    if not needed <= available:
        return None
    return AggShape(
        source=source,
        key=source_key(source),
        conjuncts=tuple(conjuncts),
        group_by=node.group_by,
        aggs=node.aggs,
    )


def storage_aggs(
    measures: dict[str, tuple[Expr | None, set[str]]],
) -> tuple[dict[str, AggSpec], dict[tuple[str, str], str]]:
    """Storage aggregate specs for a cube (or finer cached aggregate).

    Returns ``(agg_specs, column_map)`` where ``column_map`` maps
    ``(measure_key, part)`` to the stored column name. Naming is
    deterministic in the sorted measure-key order, so identical shapes
    produce identical storage plans (and identical fingerprints).
    """
    makers = {
        "sum": lambda expr: sum_(expr),
        "cnt": lambda expr: count(expr),
        "min": lambda expr: min_(expr),
        "max": lambda expr: max_(expr),
        "star": lambda expr: count_star(),
    }
    specs: dict[str, AggSpec] = {}
    colmap: dict[tuple[str, str], str] = {}
    for i, key in enumerate(sorted(measures)):
        expr, parts = measures[key]
        for part in sorted(parts):
            name = f"m{i}_{part}"
            specs[name] = makers[part](expr)
            colmap[(key, part)] = name
    return specs, colmap


def derived_rewrite(
    aggs: tuple[tuple[str, AggSpec], ...],
    group_by: tuple[str, ...],
    colmap: dict[tuple[str, str], str],
) -> tuple[tuple[tuple[str, AggSpec], ...], tuple[tuple[str, Expr], ...]]:
    """Rewrite original aggregates into (cell-merge specs, recomposition
    projections) over stored measure columns.

    SUM re-sums cell sums; COUNT/COUNT(*) re-sum cell counts through the
    exact-integer ``isum`` kernel (INT64 in, INT64 out); MIN/MAX
    re-reduce; AVG recombines as merged SUM / merged COUNT in the
    projection. The projection preserves the aggregate's original output
    column order exactly.
    """
    inner: list[tuple[str, AggSpec]] = []
    projections: list[tuple[str, Expr]] = [(g, col(g)) for g in group_by]
    for name, spec in aggs:
        key = expr_key(spec.expr)
        if spec.func == "sum":
            inner.append((name, sum_(col(colmap[(key, "sum")]))))
            projections.append((name, col(name)))
        elif spec.func in ("count", "count_star"):
            part = "star" if spec.func == "count_star" else "cnt"
            inner.append((name, AggSpec("isum", col(colmap[(key, part)]))))
            projections.append((name, col(name)))
        elif spec.func == "avg":
            inner.append((f"{name}@sum", sum_(col(colmap[(key, "sum")]))))
            inner.append((f"{name}@cnt", AggSpec("isum", col(colmap[(key, "cnt")]))))
            projections.append((name, col(f"{name}@sum") / col(f"{name}@cnt")))
        elif spec.func in ("min", "max"):
            maker = min_ if spec.func == "min" else max_
            inner.append((name, maker(col(colmap[(key, spec.func)]))))
            projections.append((name, col(name)))
        else:  # pragma: no cover - guarded by SUPPORTED_FUNCS upstream
            raise ValueError(f"underivable aggregate {spec.func!r}")
    return tuple(inner), tuple(projections)
