"""Semantic query routing: rewriting aggregations onto materialized cubes.

``route_plan`` walks an already-optimized plan top-down. Every
:class:`AggregateNode` it meets is canonicalized
(:func:`~repro.rollup.shapes.aggregate_shape`) and checked against the
catalog's cubes for the same canonical source. A cube answers the query
when it *subsumes* it:

* the query's group keys are a subset of the cube's dimensions,
* every filtered column is cube-resident (the filter re-applies to
  cells, exactly: a cell passes iff all of its rows pass, because the
  filter only references dimension columns), and
* every measure is derivable from stored parts (SUM from sums, COUNT
  from exact-integer count re-summation, AVG as merged SUM over merged
  COUNT, MIN/MAX by re-reduction).

On a match the aggregate is replaced by ``Project(Aggregate(Scan(cube,
filter)))`` — a plain plan over an ordinary table, so zone maps,
compression and late materialization all still apply downstream. On any
doubt the aggregate is left untouched and the walk continues into its
children (an outer aggregate that declines may still contain a routable
inner one). Routing never changes results; it only changes which table
produces them.
"""

from __future__ import annotations

import dataclasses

from repro.engine.plan import AggregateNode, PlanNode, ProjectNode, ScanNode
from repro.obs.metrics import HitMissStats

from .shapes import ROLLUP_PREFIX, aggregate_shape, derived_rewrite

__all__ = ["route_plan", "try_route_aggregate", "routed_tables", "ROUTER_STATS"]

# Process-wide routing hit/miss counters, mirrored into the metrics
# registry as rollup.router.hits / rollup.router.misses.
ROUTER_STATS = HitMissStats("rollup.router")


def try_route_aggregate(node: AggregateNode, db, catalog) -> PlanNode | None:
    """Rewrite one aggregate onto the smallest subsuming cube, or return
    ``None`` when no cube provably answers it."""
    shape = aggregate_shape(node, db)
    if shape is None:
        return None
    needed_dims = set(shape.group_by) | shape.conjunct_columns
    measures = shape.measures()
    for cube in catalog.cubes_for(shape.key):
        if not needed_dims <= set(cube.dims):
            continue
        if any(
            not parts <= cube.parts_for(key) for key, (_, parts) in measures.items()
        ):
            continue
        predicate = None
        for conjunct in shape.conjuncts:
            predicate = conjunct if predicate is None else (predicate & conjunct)
        inner_aggs, projections = derived_rewrite(
            shape.aggs, shape.group_by, cube.colmap
        )
        scan_columns: list[str] = list(shape.group_by)
        for _, spec in inner_aggs:
            for ref in sorted(spec.expr.references()):
                if ref not in scan_columns:
                    scan_columns.append(ref)
        rewritten: PlanNode = ScanNode(cube.name, tuple(scan_columns), predicate)
        rewritten = AggregateNode(rewritten, shape.group_by, inner_aggs)
        return ProjectNode(rewritten, projections)
    return None


def route_plan(node: PlanNode, db, catalog) -> PlanNode:
    """Rewrite every provably-routable aggregate in the plan onto its
    cube; everything else is rebuilt unchanged."""
    if catalog is None or not len(catalog):
        return node
    return _route(node, db, catalog)


def _route(node: PlanNode, db, catalog) -> PlanNode:
    if isinstance(node, AggregateNode):
        routed = try_route_aggregate(node, db, catalog)
        if routed is not None:
            ROUTER_STATS.hit()
            return routed
        ROUTER_STATS.miss()
    children = node.children()
    if not children:
        return node
    if hasattr(node, "child"):
        new_child = _route(node.child, db, catalog)
        if new_child is node.child:
            return node
        return dataclasses.replace(node, child=new_child)
    new_left = _route(node.left, db, catalog)
    new_right = _route(node.right, db, catalog)
    if new_left is node.left and new_right is node.right:
        return node
    return dataclasses.replace(node, left=new_left, right=new_right)


def routed_tables(node: PlanNode) -> list[str]:
    """Rollup tables the plan scans, in plan order (explain/trace tag)."""
    names: list[str] = []
    stack = [node]
    while stack:
        current = stack.pop(0)
        if isinstance(current, ScanNode) and current.table.startswith(ROLLUP_PREFIX):
            if current.table not in names:
                names.append(current.table)
        stack.extend(current.children())
    return names
