"""Reliability model (paper §III-C4).

The paper reports that WIMPI node failures "almost always resulted from
virtual memory thrashing": with swap enabled, an over-committed node
becomes unresponsive (effectively a failure); after *disabling swap*,
over-commit produces an isolated out-of-memory error for the offending
query while the node survives. No hardware failures occurred at all.

This module models both policies so the cluster can be run either way:

* ``SwapPolicy.SWAP`` — over-commit degrades into thrashing (the
  multiplier in :mod:`repro.cluster.cluster`); severe over-commit makes
  the node unresponsive.
* ``SwapPolicy.NO_SWAP`` — over-commit past the hard limit raises
  :class:`QueryOutOfMemoryError`; the node itself stays healthy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "SwapPolicy",
    "QueryOutOfMemoryError",
    "NodeUnresponsiveError",
    "MemoryOutcome",
    "classify_pressure",
    "reliability_report",
]

# At or beyond this over-commit, a swapping node stops answering (the
# paper's "generally unresponsive" nodes); without swap the query simply
# dies as soon as allocation fails (just past 1.0). Both thresholds are
# *inclusive*: a pressure exactly at the ratio already fails — the
# boundary working set has already exhausted what the node can give.
# The thrash boundary stays exclusive (pressure == 1.0 still fits).
_UNRESPONSIVE_RATIO = 3.0
_OOM_RATIO = 1.05


class SwapPolicy(enum.Enum):
    SWAP = "swap"
    NO_SWAP = "no-swap"


class QueryOutOfMemoryError(MemoryError):
    """A query exceeded node memory with swap disabled: the query fails,
    the node survives (the paper's preferred failure mode)."""

    def __init__(self, node: int, pressure: float):
        self.node = node
        self.pressure = pressure
        super().__init__(
            f"node {node}: working set {pressure:.2f}x of available memory "
            "(swap disabled; query aborted, node healthy)"
        )


class NodeUnresponsiveError(RuntimeError):
    """A node thrashed so badly it stopped responding — the cluster-level
    failure mode the paper eliminated by disabling swap."""

    def __init__(self, node: int, pressure: float):
        self.node = node
        self.pressure = pressure
        super().__init__(
            f"node {node}: unresponsive under {pressure:.2f}x memory "
            "over-commit (swap enabled)"
        )


@dataclass(frozen=True)
class MemoryOutcome:
    """How one node fares at a given memory pressure under a policy."""

    node: int
    pressure: float
    outcome: str  # "ok" | "thrash" | "oom" | "unresponsive"

    @property
    def completes(self) -> bool:
        return self.outcome in ("ok", "thrash")


def classify_pressure(node: int, pressure: float, policy: SwapPolicy) -> MemoryOutcome:
    """Classify a node's fate at ``pressure`` (working set / available).

    Boundary semantics are explicit and pinned by tests: pressures
    exactly at ``_OOM_RATIO`` / ``_UNRESPONSIVE_RATIO`` classify as the
    *failure* (``>=``), while a working set exactly filling memory
    (pressure == 1.0) still completes without thrashing (``>``).
    """
    if pressure < 0:
        raise ValueError("pressure must be non-negative")
    if policy is SwapPolicy.NO_SWAP:
        outcome = "oom" if pressure >= _OOM_RATIO else "ok"
    else:
        if pressure >= _UNRESPONSIVE_RATIO:
            outcome = "unresponsive"
        elif pressure > 1.0:
            outcome = "thrash"
        else:
            outcome = "ok"
    return MemoryOutcome(node=node, pressure=pressure, outcome=outcome)


def reliability_report(
    pressures_by_query: dict[int, list[float]], policy: SwapPolicy
) -> dict[int, list[MemoryOutcome]]:
    """Classify every node of every query; the paper's experience is
    that NO_SWAP converts whole-node failures into per-query OOMs."""
    return {
        query: [
            classify_pressure(node, pressure, policy)
            for node, pressure in enumerate(pressures)
        ]
        for query, pressures in pressures_by_query.items()
    }
