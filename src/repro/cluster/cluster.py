"""The WIMPI cluster facade: real distributed execution + runtime model.

``WimPiCluster`` glues the substrate together: it generates a TPC-H
database at a small base SF, partitions it across N simulated Raspberry
Pi nodes, really executes queries through the distributed driver (so
results are checkable), and predicts the wall-clock the paper's physical
cluster would show at the nominal SF:

    total = max over nodes(node compute x thrash multiplier)
            + sequential gather of partials over the 220 Mbps links
            + driver-side merge

The thrash multiplier reproduces Table III's 4-node cliff: once a node's
working set exceeds its ~850 MB of usable memory, the microSD-backed
paging costs grow exponentially with overcommit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.engine import WorkProfile
from repro.engine.optimizer import prune_columns
from repro.hardware import EnergyModel, PerformanceModel, PLATFORMS, PI_KEY
from repro.tpch import generate, get_query

from .driver import DistributedRun, Driver
from .faults import FaultPlan
from .network import NetworkModel
from .node import MemoryModel, NodeSpec
from .partition import partition_database, replicate_database
from .reliability import (
    NodeUnresponsiveError,
    QueryOutOfMemoryError,
    SwapPolicy,
    classify_pressure,
)
from .resilient import RecoveryLog, RecoveryPolicy, ResilientDriver, ResilientRun

__all__ = ["ClusterQueryRun", "WimPiCluster", "thrash_multiplier"]


def thrash_multiplier(pressure_ratio: float, threshold: float = 0.90,
                      alpha: float = 5.5, cap: float = 45.0) -> float:
    """Slowdown from memory overcommit.

    1.0 while the working set fits; exponential in the overcommit beyond
    ``threshold`` (paging through a ~10 MB/s microSD card), capped.
    """
    if pressure_ratio <= threshold:
        return 1.0
    return min(cap, math.exp(alpha * (pressure_ratio - threshold)))


@dataclass
class ClusterQueryRun:
    """A distributed execution plus its modeled wall-clock breakdown.

    Under the resilient runtime, ``recovery_seconds`` is the modeled
    wall-clock added to the critical path by retries, timeouts and
    speculative re-execution, ``coverage`` is the fraction of lineitem
    rows the answer covers (< 1.0 only after unrecoverable loss), and
    ``recovery_log`` carries the structured recovery events.
    """

    run: DistributedRun | ResilientRun
    node_seconds: list[float]
    node_pressure: list[float]
    gather_seconds: float
    merge_seconds: float
    total_seconds: float
    energy_joules: float
    recovery_seconds: float = 0.0
    coverage: float = 1.0
    recovery_log: RecoveryLog | None = None

    @property
    def result(self):
        return self.run.result

    @property
    def n_nodes(self) -> int:
        return self.run.n_nodes


class WimPiCluster:
    """A cluster of N simulated Raspberry Pi 3B+ nodes.

    Args:
        n_nodes: cluster size (the paper tests 4-24).
        base_sf: scale factor actually generated and executed.
        target_sf: nominal scale factor the runtime model reports for
            (the paper's SF 10).
        seed: dbgen seed.
        node: node spec (memory size, platform).
        network: network model (defaults to the USB-limited GbE).
        perf: performance model (defaults to calibrated constants).
        db: pre-generated database to reuse across cluster sizes
            (must match ``base_sf``/``seed``); generated when omitted.
        compress: store base data compressed (§III-C2 extension).
        swap_policy: thrash on overcommit (``SWAP``, the default) or
            raise isolated OOM errors (``NO_SWAP``, §III-C4).
        replication: lineitem replication factor. > 1 switches to the
            resilient runtime with buddy replicas (fault recovery).
        fault_plan: deterministic injected-fault script; implies the
            resilient runtime.
        recovery: retry/timeout/speculation policy for the resilient
            runtime.
    """

    def __init__(
        self,
        n_nodes: int,
        base_sf: float = 0.05,
        target_sf: float = 10.0,
        seed: int = 42,
        node: NodeSpec | None = None,
        network: NetworkModel | None = None,
        perf: PerformanceModel | None = None,
        db=None,
        compress: bool = False,
        swap_policy: SwapPolicy = SwapPolicy.SWAP,
        replication: int = 1,
        fault_plan: FaultPlan | None = None,
        recovery: RecoveryPolicy | None = None,
        tracer=None,
    ):
        if n_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.n_nodes = n_nodes
        self.tracer = tracer
        self.base_sf = base_sf
        self.target_sf = target_sf
        self.node = node or NodeSpec()
        self.network = network or NetworkModel()
        self.perf = perf or PerformanceModel()
        self.swap_policy = swap_policy
        self.memory = MemoryModel(self.node)
        self.energy = EnergyModel()
        self.db = db if db is not None else generate(base_sf, seed=seed)
        self.compress = compress
        self.node_dbs = partition_database(self.db, n_nodes)
        if compress:
            # §III-C2 extension: trade the Pi's spare cycles for its
            # scarce bandwidth/memory. Replicated tables are compressed
            # once and shared; each lineitem shard separately.
            from repro.engine.compression import compress_table
            from repro.engine import Database

            shared = {
                name: compress_table(self.db.table(name))
                for name in self.db.table_names
                if name != "lineitem"
            }
            compressed_dbs = []
            for node_db in self.node_dbs:
                out = Database(node_db.name)
                for name in node_db.table_names:
                    if name == "lineitem":
                        out.add(compress_table(node_db.table(name)))
                    else:
                        out.add(shared[name])
                compressed_dbs.append(out)
            self.node_dbs = compressed_dbs
        self.replication = replication
        self.fault_plan = fault_plan
        resilient = replication > 1 or fault_plan is not None or recovery is not None
        if resilient:
            if compress:
                raise ValueError(
                    "compress=True is not yet supported with the resilient "
                    "runtime (replication / fault injection)"
                )
            self.layout = replicate_database(self.db, n_nodes, replication=replication)
            self.driver: Driver | ResilientDriver = ResilientDriver(
                self.layout,
                fault_plan=fault_plan,
                policy=recovery,
                perf=self.perf,
                network=self.network,
                tracer=tracer,
            )
        else:
            self.layout = None
            self.driver = Driver(self.node_dbs, tracer=tracer)
        self._pi = PLATFORMS[PI_KEY]

    @property
    def scale(self) -> float:
        return self.target_sf / self.base_sf

    # Node-composition hooks (overridden by the tailored cluster) --------

    def node_spec(self, node_index: int) -> NodeSpec:
        """Spec of one node (uniform by default)."""
        return self.node

    def single_node_index(self, query) -> int:
        """Which node hosts single-node-fallback queries (e.g. Q13)."""
        return 0

    # ------------------------------------------------------------------

    def run_query(self, number: int, params: dict | None = None) -> ClusterQueryRun:
        """Execute TPC-H query ``number`` on the cluster and model its
        wall-clock at the target scale factor."""
        query = get_query(number)
        params = dict(params or {})
        params.setdefault("sf", self.base_sf)
        run = self.driver.run(query, params)
        if isinstance(run, ResilientRun):
            return self._model_resilient(query, params, run)

        node_seconds: list[float] = []
        node_pressure: list[float] = []
        if run.single_node:
            host = self.single_node_index(query)
            spec = self.node_spec(host)
            profile = run.node_profiles[0].scaled(self.scale)
            plan = prune_columns(
                query.build(self.node_dbs[0], params).node, self.node_dbs[0]
            )
            ratio = MemoryModel(spec).pressure_ratio(
                self.node_dbs[0], plan, profile, self.scale
            )
            seconds = self.perf.predict(profile, spec.platform, spec.platform.total_cores)
            node_seconds.append(seconds * thrash_multiplier(ratio))
            node_pressure.append(ratio)
            gather = merge = 0.0
        else:
            assert run.local_plan is not None
            pruned_local = prune_columns(run.local_plan, self.node_dbs[0])
            for i, (node_db, profile) in enumerate(zip(self.node_dbs, run.node_profiles)):
                spec = self.node_spec(i)
                scaled = profile.scaled(self.scale)
                ratio = MemoryModel(spec).pressure_ratio(
                    node_db, pruned_local, scaled, self.scale
                )
                seconds = self.perf.predict(
                    scaled, spec.platform, spec.platform.total_cores
                )
                node_seconds.append(seconds * thrash_multiplier(ratio))
                node_pressure.append(ratio)
            # Partial results do not grow with SF (they are aggregates),
            # so gather/merge use the measured sizes directly.
            gather = self.network.gather_time(run.partial_bytes_per_node)
            merge = (
                self.perf.predict(
                    run.merge_profile, self._pi, self._pi.total_cores
                )
                if run.merge_profile is not None
                else 0.0
            )

        # §III-C4 reliability semantics: with swap disabled an
        # over-committed fragment dies with an isolated OOM (node stays
        # healthy); with swap enabled it thrashes, and only an extreme
        # over-commit renders the node unresponsive.
        for i, pressure in enumerate(node_pressure):
            outcome = classify_pressure(i, pressure, self.swap_policy)
            if outcome.outcome == "oom":
                raise QueryOutOfMemoryError(i, pressure)
            if outcome.outcome == "unresponsive":
                raise NodeUnresponsiveError(i, pressure)

        total = max(node_seconds) + gather + merge
        energy = total * sum(
            self.node_spec(i).platform.tdp_w for i in range(self.n_nodes)
        )
        return ClusterQueryRun(
            run=run,
            node_seconds=node_seconds,
            node_pressure=node_pressure,
            gather_seconds=gather,
            merge_seconds=merge,
            total_seconds=total,
            energy_joules=energy,
        )

    def _model_resilient(self, query, params: dict, run: ResilientRun) -> ClusterQueryRun:
        """Wall-clock model for a resilient execution: per-shard compute
        with thrash multipliers as usual, plus every recovery charge —
        backoff waits, paid timeouts, abandoned attempts, speculative
        copies — scaled to the target SF so Table III-style numbers stay
        honest under faults. Modeled §III-C4 outcomes are absorbed by
        the runtime instead of raised: injected failures already exercise
        the failure path, and the runtime's job is to survive them."""
        node_seconds: list[float] = []
        base_seconds: list[float] = []
        node_pressure: list[float] = []
        if run.single_node:
            gather = merge = 0.0
            if run.covered_shards:
                host = run.exec_nodes[0]
                spec = self.node_spec(host)
                profile = run.node_profiles[0].scaled(self.scale)
                # The resilient fallback executes against the full
                # catalog (Q15/Q20 see all of lineitem), so the host is
                # charged the full-table footprint.
                plan = prune_columns(query.build(self.db, params).node, self.db)
                ratio = MemoryModel(spec).pressure_ratio(self.db, plan, profile, self.scale)
                seconds = self.perf.predict(profile, spec.platform, spec.platform.total_cores)
                outcome = run.shard_outcomes[0]
                compute = seconds * thrash_multiplier(ratio)
                base_seconds.append(compute)
                node_seconds.append(
                    compute
                    + outcome.overhead_scaled_s * self.scale
                    + outcome.overhead_fixed_s
                )
                node_pressure.append(ratio)
            elif run.shard_outcomes:
                # Nothing answered: the driver still paid for the chain
                # of timeouts before giving up.
                outcome = run.shard_outcomes[0]
                node_seconds.append(
                    outcome.overhead_scaled_s * self.scale + outcome.overhead_fixed_s
                )
        else:
            assert run.local_plan is not None and self.layout is not None
            pruned_local = prune_columns(run.local_plan, self.layout.node_dbs[0])
            outcome_by_shard = {o.shard: o for o in run.shard_outcomes}
            for shard, host, profile in zip(
                run.covered_shards, run.exec_nodes, run.node_profiles
            ):
                spec = self.node_spec(host)
                scaled = profile.scaled(self.scale)
                node_db = self.layout.db_for(shard, host)
                ratio = MemoryModel(spec).pressure_ratio(
                    node_db, pruned_local, scaled, self.scale
                )
                seconds = self.perf.predict(
                    scaled, spec.platform, spec.platform.total_cores
                )
                outcome = outcome_by_shard[shard]
                compute = seconds * thrash_multiplier(ratio)
                base_seconds.append(compute)
                node_seconds.append(
                    compute
                    + outcome.overhead_scaled_s * self.scale
                    + outcome.overhead_fixed_s
                )
                node_pressure.append(ratio)
            for outcome in run.shard_outcomes:
                if not outcome.covered:
                    node_seconds.append(
                        outcome.overhead_scaled_s * self.scale
                        + outcome.overhead_fixed_s
                    )
            gather = self.network.gather_time(run.partial_bytes_per_node)
            merge = (
                self.perf.predict(run.merge_profile, self._pi, self._pi.total_cores)
                if run.merge_profile is not None
                else 0.0
            )
        slowest = max(node_seconds) if node_seconds else 0.0
        slowest_clean = max(base_seconds) if base_seconds else 0.0
        total = slowest + gather + merge
        energy = total * sum(
            self.node_spec(i).platform.tdp_w for i in range(self.n_nodes)
        )
        return ClusterQueryRun(
            run=run,
            node_seconds=node_seconds,
            node_pressure=node_pressure,
            gather_seconds=gather,
            merge_seconds=merge,
            total_seconds=total,
            energy_joules=energy,
            recovery_seconds=slowest - slowest_clean,
            coverage=run.coverage,
            recovery_log=run.recovery,
        )

    # ------------------------------------------------------------------

    @property
    def total_msrp_usd(self) -> float:
        """Hardware cost of the cluster (the paper's $35/node figure)."""
        return self.n_nodes * self._pi.msrp_usd

    @property
    def hourly_usd(self) -> float:
        """Electricity cost per hour at peak draw for all nodes."""
        return self.n_nodes * self._pi.hourly_usd

    @property
    def peak_power_w(self) -> float:
        return self.n_nodes * self._pi.tdp_w
