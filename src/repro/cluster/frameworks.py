"""Data-processing-framework memory overheads (paper §III-C1).

The paper tested Spark on WIMPI and found "nearly half of the available
1 GB of memory was consumed by the JVM and Spark runtime, leaving only
500 MB for the base data and intermediate query results" — and notes that
earlier studies' JVM-based experiments crashed frequently, plausibly
driving their negative conclusions about SBCs.

This module models per-framework fixed memory overheads so the cluster's
feasibility analysis can answer: at a given SF and cluster size, which
frameworks can even hold the working set?
"""

from __future__ import annotations

from dataclasses import dataclass

from .node import MemoryModel, NodeSpec

__all__ = ["Framework", "FRAMEWORKS", "feasible_cluster_size", "framework_pressure"]


@dataclass(frozen=True)
class Framework:
    """A processing framework's fixed per-node memory cost.

    Attributes:
        name: framework name.
        runtime_overhead_bytes: memory claimed before any data loads
            (JVM heap reservations, runtime structures).
        data_overhead_factor: multiplicative in-memory blow-up of base
            data relative to a tight columnar layout (object headers,
            boxing; 1.0 = columnar-tight).
    """

    name: str
    runtime_overhead_bytes: float
    data_overhead_factor: float


FRAMEWORKS: dict[str, Framework] = {
    # MonetDB maps columns directly; negligible fixed cost.
    "monetdb": Framework("monetdb", runtime_overhead_bytes=50e6, data_overhead_factor=1.0),
    # The paper's measurement: JVM + Spark runtime ate ~half the 1 GB.
    "spark": Framework("spark", runtime_overhead_bytes=500e6, data_overhead_factor=1.6),
    # Hadoop MR stages through serialized records; heavy but streamable.
    "hadoop": Framework("hadoop", runtime_overhead_bytes=350e6, data_overhead_factor=1.4),
}


def framework_pressure(
    framework: "str | Framework",
    working_set_bytes: float,
    node: NodeSpec | None = None,
) -> float:
    """Memory pressure of a working set under a framework's overheads
    (1.0 = exactly fills the node's available memory)."""
    fw = FRAMEWORKS[framework] if isinstance(framework, str) else framework
    node = node or NodeSpec()
    available = node.available_bytes - fw.runtime_overhead_bytes
    if available <= 0:
        return float("inf")
    return working_set_bytes * fw.data_overhead_factor / available


def feasible_cluster_size(
    framework: "str | Framework",
    total_partitioned_bytes: float,
    replicated_bytes: float,
    max_nodes: int = 64,
    node: NodeSpec | None = None,
) -> int | None:
    """Smallest cluster size at which every node's share fits without
    paging, or ``None`` if no size up to ``max_nodes`` works (replicated
    data does not shrink with the cluster — the wall JVM frameworks hit).
    """
    for n_nodes in range(1, max_nodes + 1):
        share = total_partitioned_bytes / n_nodes + replicated_bytes
        if framework_pressure(framework, share, node) <= 1.0:
            return n_nodes
    return None
