"""Resilient distributed runtime: retries, timeouts, speculation, replicas.

The classic :class:`~repro.cluster.driver.Driver` executes every node
serially and assumes a perfect cluster. This module is the runtime the
paper's reliability findings (§III-C4) actually call for: per-shard
execution fans out on a thread pool, transient faults are retried with
capped exponential backoff, unresponsive nodes are abandoned after a
timeout derived from the :class:`~repro.hardware.PerformanceModel`
estimate, stragglers past a latency threshold get a speculative copy on
a buddy replica, and shards lost with their primaries are recovered
from replicas (:func:`~repro.cluster.partition.replicate_database`).
Only when every replica of a shard is exhausted does the driver degrade
gracefully: it still returns an answer, but one carrying a coverage
fraction < 1 and a per-shard outcome report instead of a crash.

Two clocks are in play. *Wall clock*: execution is real (results are
checkable bit-for-bit against single-node runs) and fast — injected
hangs and backoff waits never sleep. *Modeled clock*: every recovery
action — backoff waits, abandoned attempts, paid timeouts, speculative
duplicates — is charged in PerformanceModel Pi-seconds and lands in the
:class:`RecoveryLog`, so Table III-style wall-clock numbers stay honest
under faults. Given the same fault plan the run is fully deterministic:
same events, same charges, bit-identical results.

Unlike the classic driver, the single-node fallback for lineitem-bearing
queries (Q15/Q20) executes against the full catalog rather than one
node's shard, and plans whose nested aggregates would diverge per shard
(Q17 — see :func:`~repro.cluster.distplan.unsound_distribution_reason`)
are detected and routed to single-node execution, so every one of the 22
queries matches the fault-free goldens.
"""

from __future__ import annotations

import statistics
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.engine import Database, Executor, Result, WorkProfile
from repro.engine.plan import PlanNode
from repro.hardware import PLATFORMS, PI_KEY, PerformanceModel
from repro.obs.metrics import metrics
from repro.obs.trace import NULL_TRACER
from repro.tpch.queries import QueryDef

from .distplan import (
    NotDistributableError,
    split_for_partial_aggregation,
    unsound_distribution_reason,
)
from .driver import concat_frames
from .faults import FaultPlan, FaultingNode, NodeAttempt, TransientNetworkError
from .network import NetworkModel
from .partition import ReplicatedLayout
from .reliability import NodeUnresponsiveError, QueryOutOfMemoryError

__all__ = [
    "RecoveryEvent",
    "RecoveryLog",
    "RecoveryPolicy",
    "ResilientDriver",
    "ResilientRun",
    "ShardOutcome",
]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs for the retry / timeout / speculation machinery.

    Attributes:
        max_retries: transient-fault retries per node before failing
            over to the next replica.
        backoff_base_s: first retry wait (modeled seconds); doubles per
            retry up to ``backoff_cap_s``.
        backoff_cap_s: backoff ceiling.
        timeout_factor: a node is abandoned (or speculated against) once
            its modeled time exceeds this multiple of the median
            PerformanceModel estimate across successful shards.
        fallback_timeout_s: timeout charge when no estimate exists yet
            (e.g. every first-wave attempt hung).
        speculate: launch speculative copies of stragglers on replicas.
        max_workers: thread-pool width for concurrent node dispatch.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    timeout_factor: float = 4.0
    fallback_timeout_s: float = 5.0
    speculate: bool = True
    max_workers: int = 8

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("backoff_cap_s must be >= backoff_base_s")
        if self.timeout_factor <= 1.0:
            raise ValueError("timeout_factor must exceed 1.0")
        if self.fallback_timeout_s <= 0:
            raise ValueError("fallback_timeout_s must be positive")
        if self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")

    def backoff_s(self, retry: int) -> float:
        """Wait before retry number ``retry`` (0-based), capped."""
        return min(self.backoff_cap_s, self.backoff_base_s * (2.0 ** retry))


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery action, with its modeled-time charge."""

    kind: str  # "retry" | "oom" | "timeout" | "failover" | "speculate" | "lost"
    shard: int
    node: int
    attempt: int
    charged_s: float
    detail: str


@dataclass
class RecoveryLog:
    """Structured, deterministic record of everything the runtime did to
    keep the query alive. Same fault plan -> same log."""

    events: list[RecoveryEvent] = field(default_factory=list)

    def record(self, kind: str, shard: int, node: int, attempt: int,
               charged_s: float, detail: str) -> None:
        self.events.append(RecoveryEvent(kind, shard, node, attempt, charged_s, detail))
        metrics.counter("cluster.recovery." + kind).inc()

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    @property
    def charged_s(self) -> float:
        """Total modeled seconds charged to recovery actions."""
        return sum(e.charged_s for e in self.events)

    def signature(self) -> tuple:
        """Deterministic identity of the log (for replay assertions)."""
        return tuple((e.kind, e.shard, e.node, e.attempt) for e in self.events)

    def render(self) -> str:
        if not self.events:
            return "recovery log: clean run, no recovery actions"
        lines = [
            f"recovery log: {len(self.events)} events, "
            f"{self.charged_s:.3f} modeled s charged"
        ]
        for e in self.events:
            lines.append(
                f"  [{e.kind:<9}] shard {e.shard} node {e.node} "
                f"attempt {e.attempt}: {e.detail} (+{e.charged_s:.3f}s)"
            )
        return "\n".join(lines)


@dataclass
class _AttemptRecord:
    """Chronological record of one execution attempt on one node.

    ``speculative`` attempts run concurrently with the original task, so
    their failures never extend the shard's completion chain — their
    cost surfaces only through the adopted copy's ``speculate`` event.
    """

    node: int
    attempt: int
    outcome: str  # "ok" | "drop" | "oom" | "hang"
    result: NodeAttempt | None = None
    speculative: bool = False


@dataclass
class ShardOutcome:
    """How one shard's execution ended after all recovery machinery.

    Recovery overhead splits into two parts so the cluster model can
    extrapolate honestly: ``overhead_scaled_s`` covers charges that grow
    with data volume (abandoned attempts, paid timeouts, straggler
    detection delays — all derived from PerformanceModel estimates) and
    is multiplied by the SF scale; ``overhead_fixed_s`` covers true
    wall-clock waits (retry backoff, re-sent messages), which do not.
    """

    shard: int
    status: str  # "ok" | "recovered" | "lost"
    winner: NodeAttempt | None
    attempts: list[_AttemptRecord]
    completion_s: float = 0.0  # modeled completion incl. recovery charges
    overhead_fixed_s: float = 0.0
    overhead_scaled_s: float = 0.0

    @property
    def covered(self) -> bool:
        return self.winner is not None

    @property
    def overhead_s(self) -> float:
        """Modeled time beyond the winning attempt itself (base scale)."""
        return self.overhead_fixed_s + self.overhead_scaled_s


@dataclass
class ResilientRun:
    """Outcome of one resilient distributed execution.

    Duck-compatible with :class:`~repro.cluster.driver.DistributedRun`
    where the cluster model needs it (``node_profiles``,
    ``partial_bytes_per_node``, ``merge_profile``, ``single_node``,
    ``local_plan``, ``node_results_rows``), plus the recovery surface:
    ``coverage``, ``shard_outcomes``, ``recovery``, ``wasted_profile``.
    """

    query_number: int
    n_nodes: int
    replication: int
    result: Result | None
    coverage: float
    shard_outcomes: list[ShardOutcome]
    recovery: RecoveryLog
    node_profiles: list[WorkProfile]
    exec_nodes: list[int]
    covered_shards: list[int]
    merge_profile: WorkProfile | None
    partial_bytes_per_node: list[float]
    wasted_profile: WorkProfile
    single_node: bool
    local_plan: PlanNode | None = None
    node_results_rows: list[int] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return self.coverage < 1.0

    @property
    def completion_s(self) -> float:
        """Modeled node-phase completion: the slowest shard chain."""
        if not self.shard_outcomes:
            return 0.0
        return max(o.completion_s for o in self.shard_outcomes)

    def report(self) -> str:
        """Human-readable outcome summary (the CLI's --chaos output)."""
        lines = [
            f"Q{self.query_number} on {self.n_nodes} nodes "
            f"(replication {self.replication}): "
            + ("DEGRADED" if self.degraded else "complete")
            + f", coverage {self.coverage:.3f}"
        ]
        for o in self.shard_outcomes:
            where = f"node {o.winner.node}" if o.winner else "unrecovered"
            lines.append(
                f"  shard {o.shard}: {o.status:<9} on {where} "
                f"({len(o.attempts)} attempts, {o.completion_s:.3f} modeled s)"
            )
        lines.append(self.recovery.render())
        return "\n".join(lines)


class ResilientDriver:
    """Fault-tolerant scatter/gather over a replicated layout.

    Args:
        layout: replicated data placement
            (:func:`~repro.cluster.partition.replicate_database`).
        fault_plan: deterministic fault script (``None`` injects nothing).
        policy: retry/timeout/speculation knobs.
        perf: performance model used for modeled-time charges and the
            timeout estimates.
        network: network model used to charge re-sent messages.
        tracer: optional :class:`~repro.obs.trace.Tracer`. Each run
            contributes one ``query`` root span (``cluster:Q<n>``) with
            per-shard child spans, per-attempt events, and — mirrored
            1:1 from the :class:`RecoveryLog` — one root-span event per
            recovery action.
    """

    def __init__(
        self,
        layout: ReplicatedLayout,
        fault_plan: FaultPlan | None = None,
        policy: RecoveryPolicy | None = None,
        perf: PerformanceModel | None = None,
        network: NetworkModel | None = None,
        tracer=None,
    ):
        self.layout = layout
        self.fault_plan = fault_plan or FaultPlan.none()
        self.policy = policy or RecoveryPolicy()
        self.perf = perf or PerformanceModel()
        self.network = network or NetworkModel()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._pi = PLATFORMS[PI_KEY]
        self._nodes = {
            node: FaultingNode(node, self.fault_plan, self.perf, self._pi)
            for node in range(layout.n_nodes)
        }

    @property
    def n_nodes(self) -> int:
        return self.layout.n_nodes

    # ------------------------------------------------------------------

    def run(
        self,
        query: QueryDef,
        params: dict | None = None,
        force_distribute: bool = False,
    ) -> ResilientRun:
        """Run ``query`` with fault recovery; mirrors the classic
        driver's distribution rules, plus a soundness check that routes
        per-shard-divergent plans (Q17) to single-node execution."""
        params = params or {}
        tracer = self.tracer
        qspan = None
        if tracer.enabled:
            qspan = tracer.start("query", f"cluster:Q{query.number}")
        try:
            run = self._dispatch(query, params, force_distribute, qspan)
        except BaseException:
            if qspan is not None:
                qspan.annotate(error=True)
                tracer.finish(qspan)
                tracer.finalize(qspan)
            raise
        if qspan is not None:
            qspan.annotate(
                coverage=run.coverage,
                recovery_events=len(run.recovery.events),
                single_node=run.single_node,
            )
            tracer.finish(qspan)
            tracer.finalize(qspan)
        return run

    def _dispatch(
        self, query: QueryDef, params: dict, force_distribute: bool, qspan
    ) -> ResilientRun:
        if self.n_nodes == 1 or (not query.uses_lineitem and not force_distribute):
            return self._run_single_node(query, params, qspan)
        plan = query.build(self.layout.node_dbs[0], params)
        try:
            split = split_for_partial_aggregation(plan.node)
        except NotDistributableError:
            return self._run_single_node(query, params, qspan)
        if unsound_distribution_reason(split.local, self.layout.partitioned) is not None:
            return self._run_single_node(query, params, qspan)
        return self._run_distributed(query, split, qspan)

    @staticmethod
    def _mirror_log(span, log: RecoveryLog) -> None:
        """Mirror every RecoveryLog event onto the root query span, in
        log order — the trace's event sequence IS the log's, so chaos
        tests can assert exact equality."""
        if span is None:
            return
        for e in log.events:
            span.event(
                e.kind, shard=e.shard, node=e.node, attempt=e.attempt,
                charged_s=e.charged_s, detail=e.detail,
            )

    # Shard execution ---------------------------------------------------

    def _attempt_chain(
        self, shard: int, node: int, plan: PlanNode, db: Database, span=None
    ) -> tuple[list[_AttemptRecord], NodeAttempt | None]:
        """All attempts on one node for one shard: transient faults are
        retried up to ``max_retries`` times; sticky faults end the chain.

        ``span`` (the shard span, when tracing) gets one "attempt" event
        per execution attempt; speculative chains pass no span — their
        outcome surfaces through the log-mirrored "speculate" event.
        """
        records: list[_AttemptRecord] = []
        for attempt in range(self.policy.max_retries + 1):
            try:
                result = self._nodes[node].execute(db, plan, shard=shard, attempt=attempt)
            except TransientNetworkError:
                records.append(_AttemptRecord(node, attempt, "drop"))
                if span is not None:
                    span.event("attempt", node=node, attempt=attempt, outcome="drop")
                continue
            except QueryOutOfMemoryError:
                records.append(_AttemptRecord(node, attempt, "oom"))
                if span is not None:
                    span.event("attempt", node=node, attempt=attempt, outcome="oom")
                return records, None
            except NodeUnresponsiveError:
                records.append(_AttemptRecord(node, attempt, "hang"))
                if span is not None:
                    span.event("attempt", node=node, attempt=attempt, outcome="hang")
                return records, None
            records.append(_AttemptRecord(node, attempt, "ok", result))
            if span is not None:
                span.event("attempt", node=node, attempt=attempt, outcome="ok")
            return records, result
        return records, None

    def _run_shard(self, shard: int, plan: PlanNode, parent=None) -> ShardOutcome:
        """Execute one shard, failing over along its replica holders."""
        sspan = None
        if self.tracer.enabled:
            sspan = self.tracer.start("shard", f"shard:{shard}", parent=parent)
        try:
            outcome = self._run_shard_inner(shard, plan, sspan)
        finally:
            if sspan is not None:
                self.tracer.finish(sspan)
        if sspan is not None:
            sspan.annotate(status=outcome.status, attempts=len(outcome.attempts))
        return outcome

    def _run_shard_inner(self, shard: int, plan: PlanNode, sspan) -> ShardOutcome:
        records: list[_AttemptRecord] = []
        for node in self.layout.holders[shard]:
            chain, winner = self._attempt_chain(
                shard, node, plan, self.layout.db_for(shard, node), span=sspan
            )
            records.extend(chain)
            if winner is not None:
                status = "ok" if node == self.layout.holders[shard][0] else "recovered"
                return ShardOutcome(shard, status, winner, records)
        return ShardOutcome(shard, "lost", None, records)

    def _speculate(
        self, outcome: ShardOutcome, plan: PlanNode, threshold_s: float
    ) -> tuple[ShardOutcome, list[NodeAttempt]]:
        """Launch a speculative copy of a straggling shard on the next
        healthy replica; adopt it if the modeled finish is earlier."""
        shard = outcome.shard
        assert outcome.winner is not None
        tried = {r.node for r in outcome.attempts}
        backup = next(
            (
                node
                for node in self.layout.holders[shard]
                if node not in tried and node not in self.fault_plan.dead_nodes
            ),
            None,
        )
        if backup is None:
            return outcome, []
        chain, spec = self._attempt_chain(
            shard, backup, plan, self.layout.db_for(shard, backup)
        )
        for rec in chain:
            rec.speculative = True
        outcome.attempts.extend(chain)
        if spec is None:
            return outcome, []
        spec_finish = threshold_s + self._chain_charge_s(chain, threshold_s) + spec.simulated_s
        if spec_finish < outcome.winner.simulated_s:
            wasted = [outcome.winner]
            outcome.winner = spec
            outcome.status = "recovered"
            return outcome, wasted
        return outcome, [spec]

    # Modeled-time charging --------------------------------------------

    def _chain_charge_s(self, records: list[_AttemptRecord], est_s: float) -> float:
        """Modeled seconds spent on the *failed* attempts of a chain."""
        total = 0.0
        for rec in records:
            if rec.outcome == "drop":
                total += self.policy.backoff_s(rec.attempt) + self.network.resend_time()
            elif rec.outcome == "oom":
                total += est_s
            elif rec.outcome == "hang":
                total += self.policy.timeout_factor * est_s
        return total

    def _spec_fixed_s(self, outcome: ShardOutcome) -> float:
        """Backoff/message waits spent inside a speculative chain."""
        return sum(
            self.policy.backoff_s(rec.attempt) + self.network.resend_time()
            for rec in outcome.attempts
            if rec.speculative and rec.outcome == "drop"
        )

    def _charge(
        self,
        outcomes: list[ShardOutcome],
        speculated: dict[int, float],
        log: RecoveryLog,
        median_est_s: float | None,
    ) -> None:
        """Walk every shard's attempt history in deterministic order,
        recording recovery events and computing modeled completions.
        Estimate-derived charges accrue to ``overhead_scaled_s`` (they
        grow with data volume); backoff waits to ``overhead_fixed_s``."""
        est = median_est_s if median_est_s is not None else self.policy.fallback_timeout_s
        timeout_s = self.policy.timeout_factor * est
        for outcome in outcomes:
            fixed = scaled = 0.0
            prev_node: int | None = None
            for rec in outcome.attempts:
                if rec.speculative:
                    continue
                if prev_node is not None and rec.node != prev_node:
                    log.record(
                        "failover", outcome.shard, rec.node, rec.attempt, 0.0,
                        f"shard {outcome.shard} failed over node {prev_node} -> {rec.node}",
                    )
                prev_node = rec.node
                if rec.outcome == "drop":
                    wait = self.policy.backoff_s(rec.attempt)
                    charged = wait + self.network.resend_time()
                    fixed += charged
                    log.record(
                        "retry", outcome.shard, rec.node, rec.attempt, charged,
                        f"transient network drop; backing off {wait:.3f}s",
                    )
                elif rec.outcome == "oom":
                    scaled += est
                    log.record(
                        "oom", outcome.shard, rec.node, rec.attempt, est,
                        "query OOM (swap off); abandoning node's attempt",
                    )
                elif rec.outcome == "hang":
                    scaled += timeout_s
                    log.record(
                        "timeout", outcome.shard, rec.node, rec.attempt, timeout_s,
                        f"node unresponsive; abandoned after modeled "
                        f"{timeout_s:.3f}s timeout "
                        f"({self.policy.timeout_factor:.1f}x estimate)",
                    )
                # "ok" attempts are charged below: the winner's own time
                # (or the speculative completion) ends the chain.
            winner_s = 0.0
            if outcome.winner is None:
                log.record(
                    "lost", outcome.shard, -1, len(outcome.attempts), 0.0,
                    f"shard {outcome.shard}: all "
                    f"{len(self.layout.holders[outcome.shard])} replicas exhausted",
                )
            elif outcome.shard in speculated:
                # Detection waited until the straggler threshold; the
                # adopted copy then ran (plus any of its own backoffs).
                threshold_s = speculated[outcome.shard]
                spec_fixed = self._spec_fixed_s(outcome)
                scaled += threshold_s
                fixed += spec_fixed
                winner_s = outcome.winner.simulated_s
                log.record(
                    "speculate", outcome.shard, outcome.winner.node,
                    outcome.winner.attempt,
                    threshold_s + spec_fixed + winner_s,
                    f"straggler past {threshold_s:.3f}s threshold; speculative "
                    f"copy on node {outcome.winner.node} finished at modeled "
                    f"{threshold_s + spec_fixed + winner_s:.3f}s",
                )
            else:
                winner_s = outcome.winner.simulated_s
            outcome.overhead_fixed_s = fixed
            outcome.overhead_scaled_s = scaled
            outcome.completion_s = fixed + scaled + winner_s

    # Top-level paths ---------------------------------------------------

    def _run_distributed(self, query: QueryDef, split, qspan=None) -> ResilientRun:
        layout, policy = self.layout, self.policy
        with ThreadPoolExecutor(
            max_workers=min(policy.max_workers, layout.n_nodes)
        ) as pool:
            outcomes = list(pool.map(
                lambda s: self._run_shard(s, split.local, parent=qspan),
                range(layout.n_nodes),
            ))

        # Timeout / straggler threshold from the PerformanceModel
        # estimates of the successful attempts (median is robust to the
        # stragglers themselves).
        estimates = [o.winner.estimate_s for o in outcomes if o.winner is not None]
        median_est = statistics.median(estimates) if estimates else None
        threshold_s = policy.timeout_factor * (
            median_est if median_est is not None else policy.fallback_timeout_s
        )

        wasted: list[NodeAttempt] = []
        speculated: dict[int, float] = {}
        if policy.speculate and median_est is not None:
            stragglers = [
                o for o in outcomes
                if o.winner is not None and o.winner.simulated_s > threshold_s
            ]
            for outcome in stragglers:  # deterministic shard order
                before = outcome.winner
                outcome, extra = self._speculate(outcome, split.local, threshold_s)
                wasted.extend(extra)
                if outcome.winner is not before:
                    speculated[outcome.shard] = threshold_s

        log = RecoveryLog()
        self._charge(outcomes, speculated, log, median_est)
        self._mirror_log(qspan, log)

        covered = [o for o in outcomes if o.covered]
        coverage = (
            sum(layout.shards[o.shard].nrows for o in covered) / layout.total_rows
            if layout.total_rows
            else (1.0 if covered else 0.0)
        )
        frames = [o.winner.frame for o in covered]
        profiles = [o.winner.profile for o in covered]
        result = merge_profile = None
        partial_bytes = [float(f.nbytes) for f in frames]
        rows = [f.nrows for f in frames]
        if frames:
            partials_db = Database("driver")
            partials_db.add(concat_frames(frames))
            result = Executor(partials_db, tracer=self.tracer).execute(
                split.build_final(partials_db), optimize=False,
                label=f"merge:Q{query.number}", parent_span=qspan,
            )
            merge_profile = result.profile
        return ResilientRun(
            query_number=query.number,
            n_nodes=layout.n_nodes,
            replication=layout.replication,
            result=result,
            coverage=coverage,
            shard_outcomes=outcomes,
            recovery=log,
            node_profiles=profiles,
            exec_nodes=[o.winner.node for o in covered],
            covered_shards=[o.shard for o in covered],
            merge_profile=merge_profile,
            partial_bytes_per_node=partial_bytes,
            wasted_profile=WorkProfile.merged_all([w.profile for w in wasted]),
            single_node=False,
            local_plan=split.local,
            node_results_rows=rows,
        )

    def _run_single_node(self, query: QueryDef, params: dict, qspan=None) -> ResilientRun:
        """Single-node fallback with failover: every table the query
        needs is either replicated or (for the lineitem-bearing
        non-distributable Q15/Q20) taken from the full base catalog, so
        any healthy node can host the query; sticky-dead candidates are
        skipped with a recovery event."""
        layout, policy = self.layout, self.policy
        # The full base catalog equals a node catalog for every
        # replicated table; unlike the classic driver this also gives
        # lineitem-bearing fallback queries the whole table.
        db = layout.base
        plan = query.build(db, params)
        sspan = None
        if self.tracer.enabled:
            sspan = self.tracer.start("shard", "shard:0", parent=qspan)
        records: list[_AttemptRecord] = []
        winner: NodeAttempt | None = None
        for node in range(layout.n_nodes):
            chain, winner = self._attempt_chain(0, node, plan.node, db, span=sspan)
            records.extend(chain)
            if winner is not None:
                break
        if sspan is not None:
            self.tracer.finish(sspan)
            sspan.annotate(attempts=len(records))
        outcome = ShardOutcome(
            shard=0,
            status=(
                "lost" if winner is None
                else ("ok" if records and records[0].node == winner.node else "recovered")
            ),
            winner=winner,
            attempts=records,
        )

        wasted: list[NodeAttempt] = []
        speculated: dict[int, float] = {}
        threshold_s = None
        if winner is not None and policy.speculate and winner.slowdown > 1.0:
            threshold_s = policy.timeout_factor * winner.estimate_s
            outcome, wasted = self._speculate_single(outcome, plan.node, db, threshold_s)
            if outcome.winner is not winner:
                speculated[0] = threshold_s
            winner = outcome.winner

        log = RecoveryLog()
        est = winner.estimate_s if winner is not None else None
        self._charge([outcome], speculated, log, est)
        self._mirror_log(qspan, log)

        result = winner_profile = None
        if winner is not None:
            # Re-running through Executor would duplicate work; the
            # attempt already carries the full result.
            result = Result(frame=winner.frame, profile=winner.profile)
            winner_profile = winner.profile
        return ResilientRun(
            query_number=query.number,
            n_nodes=layout.n_nodes,
            replication=layout.replication,
            result=result,
            coverage=1.0 if winner is not None else 0.0,
            shard_outcomes=[outcome],
            recovery=log,
            node_profiles=[winner_profile] if winner_profile is not None else [],
            exec_nodes=[winner.node] if winner is not None else [],
            covered_shards=[0] if winner is not None else [],
            merge_profile=None,
            partial_bytes_per_node=[],
            wasted_profile=WorkProfile.merged_all([w.profile for w in wasted]),
            single_node=True,
        )

    def _speculate_single(
        self, outcome: ShardOutcome, plan: PlanNode, db: Database, threshold_s: float
    ) -> tuple[ShardOutcome, list[NodeAttempt]]:
        """Speculation for the single-node path: any healthy, untried
        node can host the replicated-table query."""
        assert outcome.winner is not None
        tried = {r.node for r in outcome.attempts}
        backup = next(
            (
                node for node in range(self.layout.n_nodes)
                if node not in tried and node not in self.fault_plan.dead_nodes
            ),
            None,
        )
        if backup is None:
            return outcome, []
        chain, spec = self._attempt_chain(0, backup, plan, db)
        for rec in chain:
            rec.speculative = True
        outcome.attempts.extend(chain)
        if spec is None:
            return outcome, []
        spec_finish = threshold_s + spec.simulated_s
        if spec_finish < outcome.winner.simulated_s:
            wasted = [outcome.winner]
            outcome.winner = spec
            outcome.status = "recovered"
            return outcome, wasted
        return outcome, [spec]
