"""Heterogeneous ("tailored") SBC clusters — paper §III-C1.

"The Raspberry Pi 4B already comes in a variant with 8 GB of memory...
they allow for the intriguing possibility of tailoring the node
composition of SBC clusters to individual workloads."

A :class:`TailoredCluster` mixes node types — e.g. twenty $35 Pi 3B+
workers plus a few $75 Pi 4B (8 GB) nodes. Memory-hungry single-node
queries (Q13) are placed on the largest-memory node, where they stop
thrashing; the embarrassingly parallel lineitem scans stay on the cheap
nodes. Cost and power account for the actual mix.
"""

from __future__ import annotations

from repro.hardware import KWH_PRICE_USD, PLATFORMS, PI4_KEY

from .cluster import WimPiCluster
from .node import NodeSpec

__all__ = ["PI4_NODE", "TailoredCluster"]

# An 8 GB Raspberry Pi 4B worker.
PI4_NODE = NodeSpec(platform=PLATFORMS[PI4_KEY], memory_bytes=8e9,
                    os_reserve_bytes=250e6)


class TailoredCluster(WimPiCluster):
    """A WIMPI cluster with per-node hardware composition.

    Args:
        node_specs: one :class:`NodeSpec` per node (the cluster size is
            ``len(node_specs)``). Single-node-fallback queries are placed
            on the node with the most available memory.
        Remaining arguments as for :class:`WimPiCluster`.
    """

    def __init__(self, node_specs: list[NodeSpec], **kwargs):
        if not node_specs:
            raise ValueError("need at least one node spec")
        kwargs.pop("node", None)
        super().__init__(len(node_specs), node=node_specs[0], **kwargs)
        self.node_specs = list(node_specs)

    # Composition hooks --------------------------------------------------

    def node_spec(self, node_index: int) -> NodeSpec:
        return self.node_specs[node_index]

    def single_node_index(self, query) -> int:
        return max(
            range(len(self.node_specs)),
            key=lambda i: self.node_specs[i].available_bytes,
        )

    # Honest accounting ---------------------------------------------------

    @property
    def total_msrp_usd(self) -> float:
        return sum(spec.platform.msrp_usd for spec in self.node_specs)

    @property
    def peak_power_w(self) -> float:
        return sum(spec.platform.tdp_w for spec in self.node_specs)

    @property
    def hourly_usd(self) -> float:
        return self.peak_power_w / 1000.0 * KWH_PRICE_USD
