"""Distributed query rewriting: local partial aggregation + driver merge.

This implements the paper's "simple driver program" strategy (§III-C3):
each node runs the full query pipeline — including joins, which are local
because every table except lineitem is replicated — up to and including
the aggregation, producing *partial* aggregates; the driver concatenates
the partials and re-aggregates, then applies any trailing
project/sort/limit. AVG is decomposed into SUM and COUNT and recombined
at the driver.

Queries whose aggregate is not decomposable (COUNT DISTINCT) or whose
plan shape is not a chain over a single top aggregate raise
:class:`NotDistributableError`; the cluster falls back to single-node
execution for them, exactly as the paper's Q13 does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.engine import Database, Q, col
from repro.engine.operators.aggregate import AggSpec
from repro.engine.plan import (
    AggregateNode,
    FilterNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    SortNode,
)

__all__ = [
    "NotDistributableError",
    "SplitPlan",
    "split_for_partial_aggregation",
    "unsound_distribution_reason",
]


class NotDistributableError(ValueError):
    """The plan cannot be decomposed into partial + final aggregation."""


def unsound_distribution_reason(
    local: PlanNode, partitioned: str = "lineitem", key: str = "l_orderkey"
) -> str | None:
    """Why running ``local`` per-partition would give wrong answers, or
    ``None`` when it is sound.

    The partial-aggregation split is correct only when every *nested*
    aggregate over the partitioned table is grouped by the partition
    key (then each group is node-local, e.g. Q18's per-order sums). A
    nested aggregate grouped any other way — Q17's per-part AVG is the
    canonical case — computes a per-shard value where the query means a
    global one, and the partials silently diverge. The top-level partial
    aggregate itself is exempt: the driver re-aggregates it.
    """
    from repro.engine.plan import ScanNode

    def scans_partitioned(node: PlanNode) -> bool:
        stack = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, ScanNode) and current.table == partitioned:
                return True
            stack.extend(current.children())
        return False

    stack = list(local.children()) if isinstance(local, AggregateNode) else [local]
    while stack:
        node = stack.pop()
        if isinstance(node, AggregateNode) and scans_partitioned(node):
            if key not in node.group_by:
                group = list(node.group_by) or ["<global>"]
                return (
                    f"nested aggregate over {partitioned!r} grouped by {group} "
                    f"(not the partition key {key!r}) would diverge per shard"
                )
        stack.extend(node.children())
    return None


@dataclass
class SplitPlan:
    """A distributable query: the per-node plan and a builder for the
    driver-side finalization plan (which scans a ``partials`` table)."""

    local: PlanNode
    build_final: Callable[[Database], PlanNode]


def _rebuild_with_child(node: PlanNode, child: PlanNode) -> PlanNode:
    if isinstance(node, SortNode):
        return SortNode(child, node.keys)
    if isinstance(node, LimitNode):
        return LimitNode(child, node.n)
    if isinstance(node, ProjectNode):
        return ProjectNode(child, node.exprs)
    if isinstance(node, FilterNode):
        return FilterNode(child, node.predicate)
    raise NotDistributableError(f"cannot rebuild {type(node).__name__}")


def split_for_partial_aggregation(root: PlanNode) -> SplitPlan:
    """Decompose a plan whose result flows through one top-level
    aggregation (possibly under project/sort/limit/having)."""
    chain: list[PlanNode] = []
    node = root
    while not isinstance(node, AggregateNode):
        if isinstance(node, (SortNode, LimitNode, ProjectNode, FilterNode)):
            chain.append(node)
            node = node.child
        else:
            raise NotDistributableError(
                f"top of plan is {type(node).__name__}, expected an aggregate chain"
            )
    aggregate = node

    partial: list[tuple[str, AggSpec]] = []
    final: list[tuple[str, AggSpec]] = []
    restores: dict[str, object] = {}
    for name, spec in aggregate.aggs:
        if spec.func in ("sum", "count", "count_star"):
            partial.append((name, spec))
            final.append((name, AggSpec("sum", col(name))))
            restores[name] = col(name)
        elif spec.func in ("min", "max"):
            partial.append((name, spec))
            final.append((name, AggSpec(spec.func, col(name))))
            restores[name] = col(name)
        elif spec.func == "avg":
            sum_name, cnt_name = f"{name}__sum", f"{name}__cnt"
            partial.append((sum_name, AggSpec("sum", spec.expr)))
            partial.append((cnt_name, AggSpec("count", spec.expr)))
            final.append((sum_name, AggSpec("sum", col(sum_name))))
            final.append((cnt_name, AggSpec("sum", col(cnt_name))))
            restores[name] = col(sum_name) / col(cnt_name)
        else:
            raise NotDistributableError(
                f"aggregate {spec.func!r} is not decomposable into partials"
            )

    local = AggregateNode(aggregate.child, aggregate.group_by, tuple(partial))

    def build_final(db: Database) -> PlanNode:
        scan = Q(db).scan("partials").node
        merged: PlanNode = AggregateNode(scan, aggregate.group_by, tuple(final))
        # Restore the original output names (and recombine AVGs).
        exprs = tuple(
            [(key, col(key)) for key in aggregate.group_by]
            + [(name, restores[name]) for name, _ in aggregate.aggs]
        )
        merged = ProjectNode(merged, exprs)
        for upper in reversed(chain):
            merged = _rebuild_with_child(upper, merged)
        return merged

    return SplitPlan(local=local, build_final=build_final)
