"""Data placement for the WIMPI cluster.

The paper's setup (§II-D2): every table is fully replicated except
lineitem, which is partitioned evenly on ``l_orderkey``. Partitioning on
the order key keeps all lines of an order on one node, which is what
makes the driver's local-join + partial-aggregate strategy correct for
the chokepoint queries.
"""

from __future__ import annotations

import numpy as np

from repro.engine import Database, Table

__all__ = ["partition_database", "partition_table"]


def partition_table(table: Table, n_nodes: int, key: str) -> list[Table]:
    """Split ``table`` into ``n_nodes`` disjoint row sets by hashing
    ``key`` (modulo; keys are dense integers in TPC-H)."""
    if n_nodes < 1:
        raise ValueError("need at least one node")
    keys = table.column(key).values
    assignment = keys % n_nodes
    return [table.select_rows(assignment == node) for node in range(n_nodes)]


def partition_database(
    db: Database,
    n_nodes: int,
    partitioned: str = "lineitem",
    key: str = "l_orderkey",
) -> list[Database]:
    """Build one catalog per node: ``partitioned`` split on ``key``,
    everything else replicated (shared by reference — replicas are
    immutable)."""
    shards = partition_table(db.table(partitioned), n_nodes, key)
    node_dbs = []
    for node in range(n_nodes):
        node_db = Database(f"{db.name}_node{node}")
        for name in db.table_names:
            if name == partitioned:
                node_db.add(shards[node])
            else:
                node_db.add(db.table(name))
        node_dbs.append(node_db)
    return node_dbs
