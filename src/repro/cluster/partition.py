"""Data placement for the WIMPI cluster.

The paper's setup (§II-D2): every table is fully replicated except
lineitem, which is partitioned evenly on ``l_orderkey``. Partitioning on
the order key keeps all lines of an order on one node, which is what
makes the driver's local-join + partial-aggregate strategy correct for
the chokepoint queries.

For the resilient runtime, :func:`replicate_database` additionally
places each lineitem shard on ``replication`` consecutive nodes (shard
``s`` lives on nodes ``s, s+1, ..., s+r-1 mod N`` — the classic buddy
scheme), so a lost node's shard can be recovered from its buddies
instead of failing the query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine import Database, Table

__all__ = [
    "ReplicatedLayout",
    "partition_database",
    "partition_table",
    "replicate_database",
]


def partition_table(table: Table, n_nodes: int, key: str) -> list[Table]:
    """Split ``table`` into ``n_nodes`` disjoint row sets by hashing
    ``key`` (modulo; keys are dense integers in TPC-H)."""
    if n_nodes < 1:
        raise ValueError("need at least one node")
    keys = table.column(key).values
    assignment = keys % n_nodes
    return [table.select_rows(assignment == node) for node in range(n_nodes)]


def partition_database(
    db: Database,
    n_nodes: int,
    partitioned: str = "lineitem",
    key: str = "l_orderkey",
) -> list[Database]:
    """Build one catalog per node: ``partitioned`` split on ``key``,
    everything else replicated (shared by reference — replicas are
    immutable)."""
    shards = partition_table(db.table(partitioned), n_nodes, key)
    node_dbs = []
    for node in range(n_nodes):
        node_db = Database(f"{db.name}_node{node}")
        for name in db.table_names:
            if name == partitioned:
                node_db.add(shards[node])
            else:
                node_db.add(db.table(name))
        node_dbs.append(node_db)
    return node_dbs


@dataclass
class ReplicatedLayout:
    """Placement map for a partitioned table with buddy replicas.

    ``holders[s]`` lists the nodes storing shard ``s``, primary first.
    Catalogs are materialized lazily by :meth:`db_for` and cached; every
    non-partitioned table is shared by reference (replicas are
    immutable), so extra replicas cost only the shard views themselves.
    """

    base: Database
    shards: list[Table]
    holders: list[list[int]]
    replication: int
    partitioned: str = "lineitem"
    _cache: dict = field(default_factory=dict, repr=False)

    @property
    def n_nodes(self) -> int:
        return len(self.shards)

    @property
    def node_dbs(self) -> list[Database]:
        """Primary catalogs — what the classic driver would see."""
        return [self.db_for(shard, self.holders[shard][0]) for shard in range(self.n_nodes)]

    @property
    def total_rows(self) -> int:
        return sum(shard.nrows for shard in self.shards)

    def db_for(self, shard: int, node: int) -> Database:
        """Catalog for executing ``shard``'s fragment on ``node``."""
        if node not in self.holders[shard]:
            raise ValueError(f"node {node} does not hold shard {shard} "
                             f"(holders: {self.holders[shard]})")
        key = (shard, node)
        if key not in self._cache:
            node_db = Database(f"{self.base.name}_shard{shard}@node{node}")
            for name in self.base.table_names:
                if name == self.partitioned:
                    node_db.add(self.shards[shard])
                else:
                    node_db.add(self.base.table(name))
            self._cache[key] = node_db
        return self._cache[key]


def replicate_database(
    db: Database,
    n_nodes: int,
    replication: int = 2,
    partitioned: str = "lineitem",
    key: str = "l_orderkey",
) -> ReplicatedLayout:
    """Partition ``partitioned`` on ``key`` and place each shard on
    ``replication`` buddy nodes. ``replication=1`` reproduces the
    paper's single-copy layout; ``replication=n_nodes`` fully replicates
    the table."""
    if not 1 <= replication <= n_nodes:
        raise ValueError(
            f"replication factor must be between 1 and n_nodes={n_nodes}, "
            f"got {replication}"
        )
    shards = partition_table(db.table(partitioned), n_nodes, key)
    holders = [
        [(shard + r) % n_nodes for r in range(replication)]
        for shard in range(n_nodes)
    ]
    return ReplicatedLayout(
        base=db,
        shards=shards,
        holders=holders,
        replication=replication,
        partitioned=partitioned,
    )
