"""Per-node memory accounting for WIMPI nodes.

A Raspberry Pi 3B+ has 1 GB of memory, part of which the OS keeps. The
paper reports that exceeding it caused virtual-memory thrashing (until
swap was disabled), visible as the enormous 4-node runtimes in Table III.
This module estimates a query's per-node working set: the referenced base
columns (string columns cost their heap bytes, as in MonetDB) plus the
largest materialized intermediate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine import Database, WorkProfile
from repro.engine.plan import PlanNode, ScanNode
from repro.engine.types import STRING
from repro.hardware import PLATFORMS, PI_KEY, PlatformSpec

__all__ = ["NodeSpec", "MemoryModel", "collect_scan_columns", "SPEC_STRING_BYTES"]

# Average per-row string-heap bytes for columns that are unique (or
# near-unique) per row in real TPC-H data. Our dbgen pools these for
# generation speed, which would make them look free in a footprint
# estimate; a real engine stores each row's text. Values are the spec's
# average lengths. Low-cardinality strings (flags, modes, segments) are
# hash-consed by MonetDB and our dictionary columns alike, so they are
# costed from the measured shared dictionary instead.
SPEC_STRING_BYTES: dict[tuple[str, str], float] = {
    ("orders", "o_comment"): 49.0,
    ("orders", "o_clerk"): 15.0,
    ("lineitem", "l_comment"): 27.0,
    ("customer", "c_comment"): 73.0,
    ("customer", "c_name"): 18.0,
    ("customer", "c_address"): 25.0,
    ("customer", "c_phone"): 15.0,
    ("supplier", "s_comment"): 63.0,
    ("supplier", "s_name"): 18.0,
    ("supplier", "s_address"): 25.0,
    ("supplier", "s_phone"): 15.0,
    ("part", "p_comment"): 14.0,
    ("part", "p_name"): 33.0,
    ("partsupp", "ps_comment"): 124.0,
}


@dataclass(frozen=True)
class NodeSpec:
    """One WIMPI node: a Raspberry Pi 3B+ with 1 GB of memory."""

    platform: PlatformSpec = PLATFORMS[PI_KEY]
    memory_bytes: float = 1e9
    os_reserve_bytes: float = 150e6

    @property
    def available_bytes(self) -> float:
        return self.memory_bytes - self.os_reserve_bytes


def collect_scan_columns(node: PlanNode) -> dict[str, set[str]]:
    """Table -> referenced columns for every scan in a plan."""
    out: dict[str, set[str]] = {}
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ScanNode):
            cols = out.setdefault(current.table, set())
            if current.columns is not None:
                cols.update(current.columns)
            else:
                cols.add("*")
        stack.extend(current.children())
    return out


class MemoryModel:
    """Estimates per-node working sets and memory pressure."""

    def __init__(self, spec: NodeSpec | None = None):
        self.spec = spec or NodeSpec()

    def column_bytes_per_row(self, db: Database, table: str, column: str) -> float:
        """In-memory bytes per row of one column including its string
        heap: spec average length for per-row-unique text, shared
        dictionary bytes for hash-consed low-cardinality strings."""
        col = db.table(table).column(column)
        n = max(1, len(col))
        per_row = col.nbytes / n
        if col.dtype is STRING:
            spec_len = SPEC_STRING_BYTES.get((table, column))
            if spec_len is not None:
                per_row += spec_len
            else:
                per_row += col.dict_nbytes / n
        return per_row

    def base_column_footprint(
        self, db: Database, plan: PlanNode, scale: float
    ) -> float:
        """Bytes of base-table columns the plan touches, extrapolated to
        the target scale factor (``scale`` = target_sf / base_sf; the
        fixed-size nation/region tables are not scaled)."""
        total = 0.0
        for table, columns in collect_scan_columns(plan).items():
            tab = db.table(table)
            names = tab.column_names if "*" in columns else sorted(columns)
            table_scale = 1.0 if table in ("nation", "region") else scale
            for name in names:
                total += self.column_bytes_per_row(db, table, name) * tab.nrows * table_scale
        return total

    def peak_intermediate_bytes(self, profile: WorkProfile) -> float:
        """Materialized intermediates resident during a (scaled) profile.

        Full column-at-a-time materialization keeps each operator's
        output (and join hash structures) alive until its consumer
        finishes, so the resident set is close to the *sum* of
        materializations, not the largest one. The cluster study models
        MonetDB's eager pipeline, so intermediates our engine avoided
        rewriting via selection vectors (``saved_bytes``) still count
        toward the modeled resident set.
        """
        return sum(op.out_bytes + op.saved_bytes for op in profile.operators)

    def rollup_footprint(self, db: Database, scale: float) -> float:
        """Resident bytes of the node's materialized rollup catalog,
        extrapolated to the target scale. Cube cardinality is bounded by
        the cross product of its (scale-invariant) dimension domains, so
        cube growth saturates well below linear; the square-root law is
        a deliberately conservative stand-in for that saturation."""
        catalog = getattr(db, "rollups", None)
        if catalog is None:
            return 0.0
        return float(catalog.nbytes) * max(1.0, scale) ** 0.5

    def pressure_ratio(
        self, db: Database, plan: PlanNode, profile: WorkProfile, scale: float
    ) -> float:
        """Working set / available memory; > 1 means the node pages.

        Rollup cubes are charged unconditionally: they stay resident to
        serve routed queries whether or not *this* plan touches them —
        that is the memory tax the routing speedups are paid for with.
        """
        footprint = self.base_column_footprint(db, plan, scale)
        footprint += self.peak_intermediate_bytes(profile)
        footprint += self.rollup_footprint(db, scale)
        return footprint / self.spec.available_bytes
