"""The distributed driver: scatter, execute locally, gather, merge.

A faithful re-creation of the paper's Python driver program: it runs the
rewritten local plan on every node, collects the (small) partial results,
and finalizes on one node. Results are *real* — the merged rows equal a
single-node execution of the original query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine import Column, Database, Executor, Frame, Result, Table, WorkProfile
from repro.engine.plan import PlanNode
from repro.obs.trace import NULL_TRACER
from repro.tpch.queries import QueryDef

from .distplan import NotDistributableError, split_for_partial_aggregation

__all__ = ["DistributedRun", "Driver", "concat_frames"]


def concat_frames(frames: list[Frame]) -> Table:
    """Stack per-node partial-result frames into one ``partials`` table."""
    if not frames:
        raise ValueError("no partial results to merge")
    names = list(frames[0].columns)
    for index, frame in enumerate(frames[1:], start=1):
        if list(frame.columns) != names:
            raise ValueError(
                f"partial results have mismatched schemas: node 0 returned "
                f"columns {names}, node {index} returned {list(frame.columns)}"
            )
    columns = {
        name: Column.concat([frame.column(name) for frame in frames]) for name in names
    }
    return Table("partials", columns)


@dataclass
class DistributedRun:
    """Everything observed while running one query on the cluster."""

    query_number: int
    n_nodes: int
    result: Result
    node_profiles: list[WorkProfile]
    merge_profile: WorkProfile | None
    partial_bytes_per_node: list[float]
    single_node: bool
    local_plan: PlanNode | None = None
    node_results_rows: list[int] = field(default_factory=list)


class Driver:
    """Executes TPC-H queries across a list of per-node catalogs."""

    def __init__(self, node_dbs: list[Database], tracer=None):
        if not node_dbs:
            raise ValueError("need at least one node")
        self.node_dbs = node_dbs
        self.tracer = tracer if tracer is not None else NULL_TRACER

    @property
    def n_nodes(self) -> int:
        return len(self.node_dbs)

    def run(
        self,
        query: QueryDef,
        params: dict | None = None,
        force_distribute: bool = False,
    ) -> DistributedRun:
        """Run ``query``; distributes over lineitem-bearing queries and
        falls back to single-node execution otherwise (the paper's Q13
        behaviour). ``force_distribute`` skips the lineitem heuristic —
        used by the shuffle executor, whose co-partitioning makes other
        queries distributable too."""
        params = params or {}
        tracer = self.tracer
        qspan = None
        if self.n_nodes == 1 or (not query.uses_lineitem and not force_distribute):
            return self._run_single_node(query, params)
        plan = query.build(self.node_dbs[0], params)
        try:
            split = split_for_partial_aggregation(plan.node)
        except NotDistributableError:
            return self._run_single_node(query, params)

        if tracer.enabled:
            qspan = tracer.start("query", f"cluster:Q{query.number}")
        frames: list[Frame] = []
        node_profiles: list[WorkProfile] = []
        partial_bytes: list[float] = []
        rows: list[int] = []
        for node, node_db in enumerate(self.node_dbs):
            sspan = None
            if qspan is not None:
                sspan = tracer.start("shard", f"shard:{node}", parent=qspan)
            result = Executor(node_db, tracer=tracer).execute(
                split.local, label=f"node{node}:Q{query.number}", parent_span=sspan
            )
            if sspan is not None:
                tracer.finish(sspan)
            frames.append(result.frame)
            node_profiles.append(result.profile)
            partial_bytes.append(float(result.frame.nbytes))
            rows.append(result.frame.nrows)

        partials_db = Database("driver")
        partials_db.add(concat_frames(frames))
        final = Executor(partials_db, tracer=tracer).execute(
            split.build_final(partials_db), optimize=False,
            label=f"merge:Q{query.number}", parent_span=qspan,
        )
        if qspan is not None:
            qspan.annotate(nodes=self.n_nodes, rows=final.frame.nrows)
            tracer.finish(qspan)
            tracer.finalize(qspan)
        return DistributedRun(
            query_number=query.number,
            n_nodes=self.n_nodes,
            result=final,
            node_profiles=node_profiles,
            merge_profile=final.profile,
            partial_bytes_per_node=partial_bytes,
            single_node=False,
            local_plan=split.local,
            node_results_rows=rows,
        )

    def _run_single_node(self, query: QueryDef, params: dict) -> DistributedRun:
        # Queries without lineitem see identical (replicated) data on
        # every node; run on node 0, as the paper's driver does.
        node_db = self.node_dbs[0]
        result = Executor(node_db, tracer=self.tracer).execute(
            query.build(node_db, params), label=f"cluster:Q{query.number}"
        )
        return DistributedRun(
            query_number=query.number,
            n_nodes=self.n_nodes,
            result=result,
            node_profiles=[result.profile],
            merge_profile=None,
            partial_bytes_per_node=[],
            single_node=True,
        )
