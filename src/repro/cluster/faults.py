"""Deterministic fault injection for the WIMPI cluster (paper §III-C4).

The paper's node failures were not hardware deaths: "node failures
almost always resulted from virtual memory thrashing" — with swap on, an
over-committed node became unresponsive; with swap off the offending
query died with an isolated OOM while the node survived. This module
turns those observations (plus the transient network drops and
stragglers any commodity-switch cluster sees) into an *injectable*,
seeded fault model so the resilient driver can be exercised and tested
without a physical cluster.

Everything is deterministic: a :class:`FaultPlan` is a pure value built
either explicitly or from a seed (:meth:`FaultPlan.chaos`), and a
:class:`FaultingNode` consults it on every execution attempt. Injected
hangs and stragglers never sleep on the wall clock — they surface as
exceptions or modeled-time multipliers, so chaos tests stay fast and
bit-identical across machines.

Fault kinds:

* ``oom`` — every attempt on the node raises
  :class:`~repro.cluster.reliability.QueryOutOfMemoryError` (sticky; the
  paper's swap-off failure mode).
* ``hang`` — every attempt raises
  :class:`~repro.cluster.reliability.NodeUnresponsiveError` (sticky; the
  swap-on thrashing failure mode — the driver pays a timeout).
* ``drop`` — the first ``drops`` attempts raise
  :class:`TransientNetworkError`, then the node recovers (retryable).
* ``straggler`` — attempts succeed but report a modeled ``slowdown``
  (e.g. a node paging lightly or thermally throttled).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.engine import Database, Executor, Frame, WorkProfile
from repro.engine.plan import PlanNode
from repro.hardware import PLATFORMS, PI_KEY, PerformanceModel, PlatformSpec
from repro.obs.metrics import metrics

from .reliability import NodeUnresponsiveError, QueryOutOfMemoryError

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultingNode",
    "InjectedFault",
    "NodeAttempt",
    "TransientNetworkError",
]

FAULT_KINDS = ("oom", "hang", "drop", "straggler")


class TransientNetworkError(ConnectionError):
    """A request/response exchange with a node was lost (a dropped TCP
    connection, a switch hiccup). Retrying the same node usually works —
    the recovery the resilient driver's backoff loop provides."""

    def __init__(self, node: int, attempt: int):
        self.node = node
        self.attempt = attempt
        super().__init__(f"node {node}: connection dropped (attempt {attempt})")


@dataclass(frozen=True)
class InjectedFault:
    """One node's scripted misbehaviour.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        node: node index the fault applies to.
        drops: for ``drop`` — how many attempts fail before the link
            recovers.
        slowdown: for ``straggler`` — modeled runtime multiplier.
        pressure: memory over-commit ratio reported by ``oom``/``hang``
            errors (cosmetic; mirrors §III-C4's failure reports).
    """

    kind: str
    node: int
    drops: int = 1
    slowdown: float = 8.0
    pressure: float = 1.30

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.node < 0:
            raise ValueError("fault node index must be non-negative")
        if self.drops < 1:
            raise ValueError("drop faults need drops >= 1")
        if self.slowdown <= 1.0:
            raise ValueError("straggler slowdown must exceed 1.0")
        if self.pressure <= 1.0:
            raise ValueError("failure pressure must exceed 1.0 (over-commit)")

    @property
    def sticky(self) -> bool:
        """True when no amount of retrying this node can succeed."""
        return self.kind in ("oom", "hang")


@dataclass(frozen=True)
class FaultPlan:
    """The complete, deterministic fault script for one run.

    At most one fault per node; an empty plan injects nothing. Plans are
    values — the same plan replayed against the same layout yields the
    same outcomes, events, and results.
    """

    faults: tuple[InjectedFault, ...] = ()
    seed: int | None = None

    def __post_init__(self):
        nodes = [f.node for f in self.faults]
        if len(nodes) != len(set(nodes)):
            raise ValueError("at most one injected fault per node")

    @classmethod
    def none(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def chaos(
        cls,
        seed: int,
        n_nodes: int,
        p_oom: float = 0.08,
        p_hang: float = 0.05,
        p_drop: float = 0.12,
        p_straggler: float = 0.15,
        slowdown_range: tuple[float, float] = (4.0, 12.0),
    ) -> "FaultPlan":
        """Draw a random-but-reproducible plan: same seed, node count and
        probabilities -> the same faults, always."""
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if min(p_oom, p_hang, p_drop, p_straggler) < 0 or (
            p_oom + p_hang + p_drop + p_straggler
        ) > 1.0:
            raise ValueError("fault probabilities must be non-negative and sum to <= 1")
        rng = random.Random(seed)
        faults = []
        for node in range(n_nodes):
            r = rng.random()
            slowdown = rng.uniform(*slowdown_range)
            pressure = rng.uniform(1.1, 2.5)
            drops = rng.randint(1, 2)
            if r < p_oom:
                faults.append(InjectedFault("oom", node, pressure=pressure))
            elif r < p_oom + p_hang:
                faults.append(InjectedFault("hang", node, pressure=pressure))
            elif r < p_oom + p_hang + p_drop:
                faults.append(InjectedFault("drop", node, drops=drops))
            elif r < p_oom + p_hang + p_drop + p_straggler:
                faults.append(InjectedFault("straggler", node, slowdown=slowdown))
        return cls(faults=tuple(faults), seed=seed)

    def fault_for(self, node: int) -> InjectedFault | None:
        for fault in self.faults:
            if fault.node == node:
                return fault
        return None

    @property
    def dead_nodes(self) -> frozenset[int]:
        """Nodes no retry can save (oom / hang)."""
        return frozenset(f.node for f in self.faults if f.sticky)

    def describe(self) -> str:
        if not self.faults:
            return "fault plan: none"
        parts = []
        for f in sorted(self.faults, key=lambda f: f.node):
            if f.kind == "straggler":
                parts.append(f"node {f.node}: straggler x{f.slowdown:.1f}")
            elif f.kind == "drop":
                parts.append(f"node {f.node}: drop x{f.drops}")
            else:
                parts.append(f"node {f.node}: {f.kind} @ {f.pressure:.2f}x")
        seed = f" (seed {self.seed})" if self.seed is not None else ""
        return f"fault plan{seed}: " + "; ".join(parts)


@dataclass
class NodeAttempt:
    """One successful execution attempt and its modeled cost.

    ``estimate_s`` is the PerformanceModel's Pi-seconds for the attempt's
    measured profile; ``simulated_s`` additionally pays any injected
    straggler slowdown. Both are modeled time — real wall-clock stays at
    test speed.
    """

    node: int
    shard: int
    attempt: int
    frame: Frame
    profile: WorkProfile
    estimate_s: float
    slowdown: float = 1.0

    @property
    def simulated_s(self) -> float:
        return self.estimate_s * self.slowdown


class FaultingNode:
    """Per-node execution wrapper that consults the fault plan.

    The wrapper is stateless across calls (safe to share between pool
    threads); attempt indices are supplied by the driver so that
    ``drop`` faults can distinguish first tries from retries.
    """

    def __init__(
        self,
        node: int,
        fault_plan: FaultPlan | None = None,
        perf: PerformanceModel | None = None,
        platform: PlatformSpec | None = None,
    ):
        self.node = node
        self.fault = (fault_plan or FaultPlan.none()).fault_for(node)
        self.perf = perf or PerformanceModel()
        self.platform = platform or PLATFORMS[PI_KEY]

    def execute(
        self, db: Database, plan: PlanNode, shard: int = 0, attempt: int = 0
    ) -> NodeAttempt:
        """Run ``plan`` against ``db`` as this node, or fail as scripted."""
        fault = self.fault
        if fault is not None:
            if fault.kind == "oom":
                metrics.counter("cluster.faults.oom").inc()
                raise QueryOutOfMemoryError(self.node, fault.pressure)
            if fault.kind == "hang":
                metrics.counter("cluster.faults.hang").inc()
                raise NodeUnresponsiveError(self.node, fault.pressure)
            if fault.kind == "drop" and attempt < fault.drops:
                metrics.counter("cluster.faults.drop").inc()
                raise TransientNetworkError(self.node, attempt)
        result = Executor(db).execute(plan)
        estimate = self.perf.predict(
            result.profile, self.platform, self.platform.total_cores
        )
        slowdown = fault.slowdown if fault is not None and fault.kind == "straggler" else 1.0
        return NodeAttempt(
            node=self.node,
            shard=shard,
            attempt=attempt,
            frame=result.frame,
            profile=result.profile,
            estimate_s=estimate,
            slowdown=slowdown,
        )
