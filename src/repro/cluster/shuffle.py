"""Repartitioned (shuffle) distributed execution — the paper's deferred
future work, implemented.

The paper's driver only parallelizes queries through the lineitem
partitioning; Q13 (customer ⋈ orders) therefore runs on a single node and
stays flat at ~103 s for every cluster size: "A more sophisticated
distributed query processing approach that could also parallelize joins
between other tables would likely yield performance trends similar to
those observed for the other queries, but this type of optimization is
beyond the scope of this paper." (§II-D2)

This module provides that optimization: tables are hash-co-partitioned on
their join keys, so the join and the first aggregation are local to each
node; partial results merge through the same
:func:`~repro.cluster.distplan.split_for_partial_aggregation` machinery.
The runtime model charges an optional shuffle phase (moving each
repartitioned table's referenced columns across the 220 Mbps links) for
the case where data was not already laid out that way.

Correctness caveat: the caller chooses partition keys, and they must keep
the plan's semantics node-local — equi-joins co-partitioned, and no
*global* scalar subqueries over a partitioned table (a per-node scalar
would diverge; Q22's AVG(c_acctbal) is the canonical example, pinned by a
test). Q13 under ``{"orders": "o_custkey", "customer": "c_custkey"}`` is
the safe, paper-motivated use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import Database
from repro.engine.optimizer import prune_columns
from repro.hardware import PLATFORMS, PI_KEY, PerformanceModel
from repro.tpch import generate, get_query

from .cluster import thrash_multiplier
from .driver import Driver
from .network import NetworkModel
from .node import MemoryModel, NodeSpec, collect_scan_columns
from .partition import partition_table

__all__ = ["RepartitionedRun", "repartition_database", "run_repartitioned"]


def repartition_database(
    db: Database, n_nodes: int, partition_keys: dict[str, str]
) -> list[Database]:
    """Hash-partition every table in ``partition_keys`` on its key
    column; replicate the rest. Co-partitioned keys (same modulus) make
    equi-joins on those keys node-local."""
    node_dbs = []
    shards: dict[str, list] = {
        table_name: partition_table(db.table(table_name), n_nodes, key)
        for table_name, key in partition_keys.items()
    }
    for node in range(n_nodes):
        node_db = Database(f"{db.name}_shuffle{node}")
        for name in db.table_names:
            if name in shards:
                node_db.add(shards[name][node])
            else:
                node_db.add(db.table(name))
        node_dbs.append(node_db)
    return node_dbs


@dataclass
class RepartitionedRun:
    """Outcome of a shuffle-distributed execution."""

    query_number: int
    n_nodes: int
    result: object
    shuffle_seconds: float
    node_seconds: list[float]
    node_pressure: list[float]
    gather_seconds: float
    merge_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            self.shuffle_seconds
            + max(self.node_seconds)
            + self.gather_seconds
            + self.merge_seconds
        )


def _shuffle_time(
    db: Database,
    local_plan,
    partition_keys: dict[str, str],
    n_nodes: int,
    scale: float,
    memory: MemoryModel,
    network: NetworkModel,
) -> float:
    """Time to repartition the referenced columns of the shuffled tables.

    All nodes send concurrently; each holds 1/N of every table and keeps
    1/N of what it holds, so it transmits total_bytes/N x (N-1)/N over
    its own (USB-limited) link.
    """
    total_bytes = 0.0
    referenced = collect_scan_columns(local_plan)
    for table_name in partition_keys:
        if table_name not in referenced:
            continue
        table = db.table(table_name)
        columns = referenced[table_name]
        names = table.column_names if "*" in columns else sorted(columns)
        for column in names:
            per_row = memory.column_bytes_per_row(db, table_name, column)
            total_bytes += per_row * table.nrows * scale
    per_node = total_bytes / n_nodes * (n_nodes - 1) / n_nodes
    return network.transfer_time(per_node)


def run_repartitioned(
    number: int,
    n_nodes: int,
    partition_keys: dict[str, str],
    base_sf: float = 0.02,
    target_sf: float = 10.0,
    seed: int = 42,
    db: Database | None = None,
    include_shuffle: bool = True,
    node: NodeSpec | None = None,
    network: NetworkModel | None = None,
    perf: PerformanceModel | None = None,
) -> RepartitionedRun:
    """Execute a TPC-H query with tables co-partitioned on
    ``partition_keys`` (e.g. ``{"orders": "o_custkey",
    "customer": "c_custkey"}`` for Q13) and model its wall-clock.

    ``include_shuffle=False`` models a pre-partitioned layout (the
    transparent-partitioning feature the paper wishes MonetDB had).
    """
    db = db if db is not None else generate(base_sf, seed=seed)
    node = node or NodeSpec()
    network = network or NetworkModel()
    perf = perf or PerformanceModel()
    memory = MemoryModel(node)
    query = get_query(number)
    params = {"sf": base_sf}
    scale = target_sf / base_sf

    node_dbs = repartition_database(db, n_nodes, partition_keys)
    run = Driver(node_dbs).run(query, params, force_distribute=True)
    if run.single_node:
        raise ValueError(
            f"Q{number} did not distribute under partition keys {partition_keys}; "
            "its top-level aggregate is not decomposable"
        )

    pi = PLATFORMS[PI_KEY]
    pruned = prune_columns(run.local_plan, node_dbs[0])
    node_seconds, node_pressure = [], []
    for node_db, profile in zip(node_dbs, run.node_profiles):
        scaled = profile.scaled(scale)
        pressure = memory.pressure_ratio(node_db, pruned, scaled, scale)
        seconds = perf.predict(scaled, pi, pi.total_cores)
        node_seconds.append(seconds * thrash_multiplier(pressure))
        node_pressure.append(pressure)

    shuffle = (
        _shuffle_time(db, pruned, partition_keys, n_nodes, scale, memory, network)
        if include_shuffle
        else 0.0
    )
    gather = network.gather_time(run.partial_bytes_per_node)
    merge = perf.predict(run.merge_profile, pi, pi.total_cores)
    return RepartitionedRun(
        query_number=number,
        n_nodes=n_nodes,
        result=run.result,
        shuffle_seconds=shuffle,
        node_seconds=node_seconds,
        node_pressure=node_pressure,
        gather_seconds=gather,
        merge_seconds=merge,
    )
