"""Network model for the WIMPI cluster.

Nodes sit on a Gigabit switch, but each Pi's Ethernet port shares the
USB 2.0 bus, capping usable point-to-point bandwidth at ~220 Mbps
(§II-C3). The driver gathers per-node partial results sequentially over
the Python client API, so per-message latency matters at large cluster
sizes — the source of the paper's diminishing returns on Q6/Q14.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.microbench.iperf import effective_node_bandwidth_mbps

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Transfer-time model between WIMPI nodes.

    Attributes:
        bandwidth_mbps: usable node-to-node bandwidth.
        message_latency_s: fixed cost per request/response exchange
            (TCP + MonetDB client protocol round trip).
    """

    bandwidth_mbps: float = effective_node_bandwidth_mbps()
    message_latency_s: float = 0.0025

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_mbps * 1e6 / 8.0

    def transfer_time(self, payload_bytes: float) -> float:
        """One message of ``payload_bytes`` between two nodes."""
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        return self.message_latency_s + payload_bytes / self.bandwidth_bytes_per_s

    def resend_time(self, resends: int = 1) -> float:
        """Wire cost of re-issuing a request ``resends`` times after
        transient drops: each re-send repeats the per-message round trip
        (the payload itself never made it, so only latency is re-paid
        until the successful attempt, which callers charge separately)."""
        if resends < 0:
            raise ValueError("resends must be non-negative")
        return resends * self.message_latency_s

    def gather_time(self, payload_bytes_per_node: list[float]) -> float:
        """Driver-side sequential gather of partial results (the paper's
        simple Python driver collects node by node)."""
        return sum(self.transfer_time(b) for b in payload_bytes_per_node)

    def broadcast_time(self, payload_bytes: float, n_nodes: int) -> float:
        """Sequentially send the same request to every node."""
        return n_nodes * self.transfer_time(payload_bytes)
