"""Network-attached-memory (NAM) hybrid cluster — the paper's §III-C1
future-work proposal, implemented as an extension.

One traditional server hosts a large memory pool next to the Pi nodes.
Memory-light query fragments run on the Pis as usual; when a fragment's
working set exceeds a node's 1 GB (the thrash regime), it is offloaded
to the memory server, which executes it at server speed on locally
resident data — "the server could perform tasks that require a large
amount of memory, such as an aggregation with many distinct keys or
performing a join". Results return over the server's (non-USB-limited)
Gigabit link.

Cost/energy accounting includes the extra server, so the Figs. 5-7
normalizations remain honest for the hybrid.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.optimizer import prune_columns
from repro.hardware import PLATFORMS, PlatformSpec
from repro.tpch import get_query

from .cluster import ClusterQueryRun, WimPiCluster, thrash_multiplier
from .network import NetworkModel

__all__ = ["NamCluster", "NamQueryRun"]

# The memory server sits on the switch with a real GbE port (no USB bus),
# so transfers run at ~940 Mbps usable.
_SERVER_LINK = NetworkModel(bandwidth_mbps=940.0, message_latency_s=0.0015)


@dataclass
class NamQueryRun:
    """A hybrid execution: where each fragment ran and the wall-clock."""

    base: ClusterQueryRun
    offloaded_nodes: list[int]
    server_seconds: float
    total_seconds: float

    @property
    def result(self):
        return self.base.result

    @property
    def offloaded(self) -> bool:
        return bool(self.offloaded_nodes)


class NamCluster(WimPiCluster):
    """A WIMPI cluster plus one memory server.

    Args:
        memory_server: platform hosting the pool (default op-e5).
        offload_threshold: pressure ratio above which a fragment moves to
            the server (default: where thrashing would begin).
        Remaining arguments as for :class:`WimPiCluster`.
    """

    def __init__(
        self,
        n_nodes: int,
        memory_server: "str | PlatformSpec" = "op-e5",
        offload_threshold: float = 0.90,
        **kwargs,
    ):
        super().__init__(n_nodes, **kwargs)
        self.memory_server = (
            PLATFORMS[memory_server] if isinstance(memory_server, str) else memory_server
        )
        self.offload_threshold = offload_threshold

    def run_query(self, number: int, params: dict | None = None) -> NamQueryRun:  # type: ignore[override]
        query = get_query(number)
        params = dict(params or {})
        params.setdefault("sf", self.base_sf)
        base = super().run_query(number, params)

        offloaded: list[int] = []
        node_seconds = list(base.node_seconds)
        server_seconds = 0.0
        if base.run.single_node:
            profiles = [base.run.node_profiles[0].scaled(self.scale)]
        else:
            profiles = [p.scaled(self.scale) for p in base.run.node_profiles]
        for i, (pressure, profile) in enumerate(zip(base.node_pressure, profiles)):
            if pressure <= self.offload_threshold:
                continue
            # Offload: the server executes the fragment at its own speed
            # on pool-resident data (no thrash), then ships the fragment
            # result back over its GbE link.
            fragment = self.perf.predict(profile, self.memory_server)
            result_bytes = profile.result_bytes
            transfer = _SERVER_LINK.transfer_time(result_bytes)
            node_seconds[i] = fragment + transfer
            server_seconds += fragment
            offloaded.append(i)

        total = max(node_seconds) + base.gather_seconds + base.merge_seconds
        return NamQueryRun(
            base=base,
            offloaded_nodes=offloaded,
            server_seconds=server_seconds,
            total_seconds=total,
        )

    # ------------------------------------------------------------------
    # Honest cost/energy accounting for the hybrid
    # ------------------------------------------------------------------

    @property
    def total_msrp_usd(self) -> float:
        server = self.memory_server.total_msrp_usd or 0.0
        return super().total_msrp_usd + server

    @property
    def peak_power_w(self) -> float:
        server = self.memory_server.total_tdp_w or 0.0
        return super().peak_power_w + server
