"""Workload simulation with node power-gating (paper §III-B2).

The paper argues a key SBC-cluster advantage is *fine-grained energy
proportionality*: "individual Raspberry Pi 3B+ nodes could easily be
turned off to save power... SBCs can boot up much faster than traditional
servers, allowing a cluster of SBCs to respond much more quickly to
changes in demand."

This module is a small discrete-event simulator realizing that argument:
queries arrive over time; the cluster runs them FIFO; idle nodes power
off after a grace period and pay a boot delay when work returns. The
same trace can be replayed against an always-on cluster or a traditional
server for the energy/latency trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware import PLATFORMS, PI_KEY, PlatformSpec

__all__ = [
    "QueryArrival",
    "PowerPolicy",
    "SimulationResult",
    "WorkloadSimulator",
    "poisson_workload",
]


@dataclass(frozen=True)
class QueryArrival:
    """One query in the trace: when it arrives and how long it runs on
    the simulated cluster (runtime from the cluster model)."""

    arrival_s: float
    runtime_s: float
    label: str = ""


@dataclass(frozen=True)
class PowerPolicy:
    """When to power nodes off and what waking costs.

    Attributes:
        gate_after_idle_s: power nodes off after this much idleness
            (``None`` disables gating — always on).
        boot_s: time to bring gated nodes back (a Pi boots in tens of
            seconds; a server in minutes).
        boot_power_fraction: fraction of peak power drawn while booting.
    """

    gate_after_idle_s: float | None = 60.0
    boot_s: float = 20.0
    boot_power_fraction: float = 0.8

    def __post_init__(self):
        if self.gate_after_idle_s is not None and self.gate_after_idle_s <= 0:
            raise ValueError(
                "gate_after_idle_s must be positive (or None to disable gating)"
            )
        if self.boot_s < 0:
            raise ValueError("boot_s must be non-negative")
        if not 0.0 <= self.boot_power_fraction <= 1.0:
            raise ValueError("boot_power_fraction must be within [0, 1]")


@dataclass
class SimulationResult:
    """Aggregate outcome of one trace replay."""

    total_time_s: float
    busy_s: float
    idle_on_s: float
    gated_s: float
    boot_s: float
    energy_wh: float
    mean_latency_s: float
    p99_latency_s: float
    queries: int

    @property
    def utilization(self) -> float:
        return self.busy_s / self.total_time_s if self.total_time_s else 0.0


class WorkloadSimulator:
    """FIFO single-query-at-a-time execution with optional power gating.

    Args:
        active_w: whole-configuration power while executing.
        idle_w: power while idle but on.
        policy: gating policy (``PowerPolicy(gate_after_idle_s=None)``
            models an always-on machine).
    """

    def __init__(self, active_w: float, idle_w: float, policy: PowerPolicy):
        if active_w <= 0:
            raise ValueError("active power must be positive")
        if idle_w < 0:
            raise ValueError("idle power must be non-negative")
        self.active_w = active_w
        self.idle_w = idle_w
        self.policy = policy

    def run(self, trace: list[QueryArrival]) -> SimulationResult:
        """Replay ``trace`` (sorted by arrival) and account every second
        of busy / idle-on / gated / booting time."""
        if not trace:
            raise ValueError("empty workload trace")
        trace = sorted(trace, key=lambda q: q.arrival_s)
        now = 0.0
        busy = idle_on = gated = booting = 0.0
        latencies: list[float] = []
        powered_on = True

        for query in trace:
            if query.arrival_s > now:
                gap = query.arrival_s - now
                limit = self.policy.gate_after_idle_s
                if limit is None or gap <= limit:
                    idle_on += gap
                else:
                    idle_on += limit
                    gated += gap - limit
                    powered_on = False
                now = query.arrival_s
            if not powered_on:
                booting += self.policy.boot_s
                now += self.policy.boot_s
                powered_on = True
            now += query.runtime_s
            busy += query.runtime_s
            # Latency is measured from arrival: queueing behind earlier
            # queries and boot delays both count.
            latencies.append(now - query.arrival_s)

        total = now
        energy_wh = (
            busy * self.active_w
            + idle_on * self.idle_w
            + booting * self.active_w * self.policy.boot_power_fraction
        ) / 3600.0
        latencies_arr = np.asarray(latencies)
        return SimulationResult(
            total_time_s=total,
            busy_s=busy,
            idle_on_s=idle_on,
            gated_s=gated,
            boot_s=booting,
            energy_wh=energy_wh,
            mean_latency_s=float(latencies_arr.mean()),
            p99_latency_s=float(np.percentile(latencies_arr, 99)),
            queries=len(trace),
        )

    # Convenience constructors ------------------------------------------

    @classmethod
    def for_wimpi(cls, n_nodes: int, policy: PowerPolicy | None = None) -> "WorkloadSimulator":
        pi = PLATFORMS[PI_KEY]
        return cls(
            active_w=pi.tdp_w * n_nodes,
            idle_w=pi.idle_w * n_nodes,
            policy=policy or PowerPolicy(),
        )

    @classmethod
    def for_server(cls, key: str = "op-e5") -> "WorkloadSimulator":
        """A traditional server: never powered off (minutes-long boots
        and remote management make gating impractical, as the paper
        notes)."""
        spec: PlatformSpec = PLATFORMS[key]
        return cls(
            active_w=spec.total_tdp_w,
            idle_w=spec.idle_w * spec.sockets,
            policy=PowerPolicy(gate_after_idle_s=None),
        )


def poisson_workload(
    duration_s: float,
    queries_per_hour: float,
    runtime_s: float = 1.0,
    seed: int = 7,
) -> list[QueryArrival]:
    """A Poisson arrival trace with fixed per-query runtime."""
    if duration_s <= 0 or queries_per_hour <= 0:
        raise ValueError("duration and rate must be positive")
    rng = np.random.default_rng(seed)
    rate_per_s = queries_per_hour / 3600.0
    arrivals = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate_per_s))
        if t > duration_s:
            break
        arrivals.append(QueryArrival(arrival_s=t, runtime_s=runtime_s))
    if not arrivals:
        arrivals.append(QueryArrival(arrival_s=duration_s / 2, runtime_s=runtime_s))
    return arrivals
