"""WIMPI cluster substrate: partitioning, network, distributed driver,
memory model, and the cluster facade."""

from .cluster import ClusterQueryRun, WimPiCluster, thrash_multiplier
from .nam import NamCluster, NamQueryRun
from .distplan import (
    NotDistributableError,
    SplitPlan,
    split_for_partial_aggregation,
    unsound_distribution_reason,
)
from .driver import DistributedRun, Driver, concat_frames
from .faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultingNode,
    InjectedFault,
    NodeAttempt,
    TransientNetworkError,
)
from .network import NetworkModel
from .node import MemoryModel, NodeSpec, collect_scan_columns
from .partition import (
    ReplicatedLayout,
    partition_database,
    partition_table,
    replicate_database,
)
from .resilient import (
    RecoveryEvent,
    RecoveryLog,
    RecoveryPolicy,
    ResilientDriver,
    ResilientRun,
    ShardOutcome,
)
from .tailored import PI4_NODE, TailoredCluster
from .shuffle import RepartitionedRun, repartition_database, run_repartitioned
from .scheduler import PowerPolicy, QueryArrival, SimulationResult, WorkloadSimulator, poisson_workload
from .frameworks import FRAMEWORKS, Framework, feasible_cluster_size, framework_pressure
from .reliability import (
    MemoryOutcome,
    NodeUnresponsiveError,
    QueryOutOfMemoryError,
    SwapPolicy,
    classify_pressure,
    reliability_report,
)

__all__ = [
    "ClusterQueryRun", "DistributedRun", "Driver", "MemoryModel",
    "NamCluster", "NamQueryRun", "MemoryOutcome", "NodeUnresponsiveError",
    "QueryOutOfMemoryError", "SwapPolicy", "classify_pressure", "reliability_report",
    "PowerPolicy", "QueryArrival", "SimulationResult", "WorkloadSimulator",
    "poisson_workload", "FRAMEWORKS", "Framework", "feasible_cluster_size",
    "framework_pressure", "RepartitionedRun", "repartition_database",
    "run_repartitioned", "PI4_NODE", "TailoredCluster",
    "NetworkModel", "NodeSpec", "NotDistributableError", "SplitPlan",
    "WimPiCluster", "collect_scan_columns", "concat_frames",
    "partition_database", "partition_table", "split_for_partial_aggregation",
    "thrash_multiplier",
    "FAULT_KINDS", "FaultPlan", "FaultingNode", "InjectedFault", "NodeAttempt",
    "TransientNetworkError", "ReplicatedLayout", "replicate_database",
    "RecoveryEvent", "RecoveryLog", "RecoveryPolicy", "ResilientDriver",
    "ResilientRun", "ShardOutcome", "unsound_distribution_reason",
]
