"""repro — a full reproduction of "The Case for In-Memory OLAP on
'Wimpy' Nodes" (Crotty et al., ICDE 2021).

The package contains everything the study needs, built from scratch:

* :mod:`repro.engine` — an in-memory columnar OLAP engine (numpy),
* :mod:`repro.tpch` — a deterministic TPC-H data generator + 22 queries,
* :mod:`repro.hardware` — the paper's platform catalog and a calibrated
  performance/energy model (the substitute for physical hardware),
* :mod:`repro.microbench` — Whetstone/Dhrystone/sysbench/iperf models,
* :mod:`repro.cluster` — the WIMPI Raspberry-Pi cluster simulator,
* :mod:`repro.strategies` — the three query-execution paradigms,
* :mod:`repro.analysis` — cost/energy/speedup normalization,
* :mod:`repro.core` — the study harness that regenerates every table
  and figure.

Quickstart::

    from repro import ExperimentStudy
    study = ExperimentStudy()
    table2 = study.table2()          # SF 1 runtimes, 22 queries x 10 platforms
"""

from .core import EXPERIMENT_IDS, ExperimentStudy, StudyConfig, TPCHProfiler
from .engine import Database, Q, Result, agg, case, col, execute, lit, scalar, sql
from .hardware import PLATFORMS, PI_KEY, EnergyModel, PerformanceModel, get_platform
from .cluster import WimPiCluster
from .tpch import ALL_QUERY_NUMBERS, CHOKEPOINTS, generate, get_query

__version__ = "1.0.0"

__all__ = [
    "ALL_QUERY_NUMBERS", "CHOKEPOINTS", "Database", "EXPERIMENT_IDS",
    "EnergyModel", "ExperimentStudy", "PI_KEY", "PLATFORMS",
    "PerformanceModel", "Q", "Result", "StudyConfig", "TPCHProfiler",
    "WimPiCluster", "agg", "case", "col", "execute", "generate",
    "get_platform", "get_query", "lit", "scalar", "sql", "__version__",
]
