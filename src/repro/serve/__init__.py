"""Concurrent query serving: admission control, deadlines, shedding.

The "millions of users" axis of the roadmap: many simultaneous requests
multiplexed over one morsel-driven engine, robust by construction —
admitted queries return correct rows, overload sheds with typed errors,
deadlines and cancels free workers at morsel boundaries, and nothing
any client sends can crash the server.

Public surface::

    from repro.serve import QueryServer, AdmissionPolicy, Overloaded

    with QueryServer(db, workers=4) as server:
        rows = server.query("SELECT COUNT(*) AS n FROM lineitem").rows
"""

from .admission import AdmissionController, AdmissionPolicy
from .errors import CircuitOpen, Overloaded, QueryFailed, ServeError, ServerClosed
from .policy import CircuitBreaker, RetryPolicy, TransientServeError
from .server import QueryServer, Ticket

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "CircuitBreaker",
    "CircuitOpen",
    "Overloaded",
    "QueryFailed",
    "QueryServer",
    "RetryPolicy",
    "ServeError",
    "ServerClosed",
    "Ticket",
    "TransientServeError",
]
