"""Retry and circuit-breaker policies for the serving layer.

Ported from the :class:`~repro.cluster.resilient.RecoveryPolicy` idiom:
transient failures retry with capped exponential backoff, and repeated
*unexpected* failures trip a circuit breaker so a sick executor fails
fast (typed :class:`~repro.serve.errors.CircuitOpen`) instead of
queueing doomed work behind a bounded queue. Unlike the cluster
runtime's modeled clock, the server lives on the wall clock — backoffs
really sleep (they are bounded small) and the breaker cooldown is real
elapsed time.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = ["CircuitBreaker", "RetryPolicy", "TransientServeError"]


class TransientServeError(RuntimeError):
    """An execution failure worth retrying (resource blips, torn
    shared state from a concurrent fault). Anything else is assumed
    deterministic and fails the request immediately."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for transient executor failures.

    Attributes:
        max_retries: retries after the first attempt (0 disables).
        backoff_base_s: first retry wait; doubles per retry.
        backoff_cap_s: backoff ceiling.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.01
    backoff_cap_s: float = 0.25

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("backoff_cap_s must be >= backoff_base_s")

    def backoff_s(self, retry: int) -> float:
        """Wait before retry number ``retry`` (0-based), capped."""
        return min(self.backoff_cap_s, self.backoff_base_s * (2.0 ** retry))


class CircuitBreaker:
    """Three-state breaker over consecutive unexpected failures.

    *closed* — normal service; failures count, any success resets.
    *open* — :meth:`allow` refuses until ``cooldown_s`` elapses.
    *half-open* — after cooldown one probe request is let through;
    its success closes the breaker, its failure re-opens it.

    Thread-safe; every transition lands in the caller-visible
    :meth:`state` property so tests and metrics can assert on it.
    """

    def __init__(self, failure_threshold: int = 5, cooldown_s: float = 1.0):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Whether a new request may proceed right now. In half-open
        state only the first caller after cooldown gets through."""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if time.monotonic() - self._opened_at < self.cooldown_s:
                    return False
                self._state = "half-open"
                self._probing = False
            # half-open: admit exactly one probe at a time.
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            if self._state == "half-open":
                self._state = "open"
                self._opened_at = time.monotonic()
                self._probing = False
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._state = "open"
                self._opened_at = time.monotonic()
