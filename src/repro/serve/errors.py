"""The serving layer's typed error contract.

A client of :class:`~repro.serve.server.QueryServer` sees exactly four
failure shapes, all catchable as library exceptions, none of them a
crash:

* :class:`~repro.engine.sql.SqlError` — the request text was malformed
  or unsupported SQL (the front-end's never-crash contract).
* :class:`Overloaded` — the server declined to even queue the request
  (bounded queue full, projected queue delay past the bound, circuit
  open, or server shutting down). Retriable by the client after
  backoff; the server did no work.
* :class:`~repro.engine.cancel.QueryInterrupted` — the request was
  admitted but stopped early: :class:`~repro.engine.cancel.QueryCancelled`
  (client cancel) or :class:`~repro.engine.cancel.DeadlineExceeded`
  (per-request timeout).
* :class:`QueryFailed` — execution raised something unexpected. The
  server wraps it (preserving the original as ``__cause__``), sheds the
  request, and keeps serving; the failure never poisons the result
  cache or another request.

``Overloaded`` subclasses are deliberately cheap to construct — load
shedding happens on the submit path under the admission lock.
"""

from __future__ import annotations

__all__ = ["CircuitOpen", "Overloaded", "QueryFailed", "ServeError", "ServerClosed"]


class ServeError(RuntimeError):
    """Base for every error the serving layer itself manufactures."""


class Overloaded(ServeError):
    """The request was shed without execution; retry later.

    Attributes:
        reason: machine-readable shed cause
            (``"queue-full"`` | ``"queue-delay"`` | ``"circuit-open"``
            | ``"closed"``).
    """

    def __init__(self, message: str, reason: str = "queue-full"):
        super().__init__(message)
        self.reason = reason


class CircuitOpen(Overloaded):
    """The circuit breaker tripped on repeated executor failures; the
    server fails fast until the cooldown elapses."""

    def __init__(self, message: str):
        super().__init__(message, reason="circuit-open")


class ServerClosed(Overloaded):
    """The server is draining or closed; no new work is accepted."""

    def __init__(self, message: str = "server is closed"):
        super().__init__(message, reason="closed")


class QueryFailed(ServeError):
    """An admitted query's execution raised unexpectedly. The original
    exception rides along as ``__cause__``."""
