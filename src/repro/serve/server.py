"""The query server: a robust front door over the parallel engine.

:class:`QueryServer` multiplexes many concurrent requests — SQL text or
built plans, each with a priority and an optional deadline — over one
shared :class:`~repro.engine.parallel.ParallelExecutor` (one morsel
pool, one single-flight result cache). Robustness is structural, not
aspirational:

* **Never crash.** Whatever a request contains, the caller sees rows or
  one of the typed errors in :mod:`repro.serve.errors` /
  :class:`~repro.engine.sql.SqlError` /
  :class:`~repro.engine.cancel.QueryInterrupted`. Worker threads cannot
  die: every outcome path is caught and resolved onto the ticket.
* **Never block unboundedly.** Admission control sheds before queues
  grow past what the latency bound can drain
  (:mod:`repro.serve.admission`).
* **Never waste a worker on a dead request.** Deadlines and client
  cancels flip a :class:`~repro.engine.cancel.CancelToken` checked at
  morsel boundaries, so an abandoned query frees its engine workers
  within one in-flight morsel and its server slot immediately after.
* **Never serve a wrong answer.** Results come from the same executor
  the differential walls pin; cancelled or failed executions are
  evicted from the single-flight cache before any waiter can observe
  them, so a retry always recomputes.

Transient executor failures retry with capped backoff; repeated
unexpected failures trip a circuit breaker that sheds fast instead of
queueing doomed work (:mod:`repro.serve.policy`). Every request gets a
``request`` trace span (child ``query`` span from the executor) and the
process-wide metrics registry counts admitted / shed / cancelled /
deadline-missed / completed / failed outcomes.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time

from repro.engine import ParallelExecutor
from repro.engine.cancel import (
    CancelToken,
    DeadlineExceeded,
    QueryCancelled,
    QueryInterrupted,
)
from repro.engine.plan import PlanNode, Q
from repro.engine.sql import SqlError, sql as parse_sql
from repro.obs.metrics import metrics
from repro.obs.trace import NULL_TRACER

from .admission import AdmissionController, AdmissionPolicy, estimate_service_cost
from .errors import QueryFailed, ServerClosed
from .policy import CircuitBreaker, RetryPolicy, TransientServeError

__all__ = ["QueryServer", "Ticket"]


class Ticket:
    """Client-side handle for one submitted request.

    ``result()`` blocks until the request resolves and either returns
    the engine :class:`~repro.engine.result.Result` or raises the typed
    error the request ended with. ``cancel()`` flips the request's
    cancel token — effective whether the request is still queued or
    already mid-execution.
    """

    __slots__ = (
        "request_id", "priority", "label",
        "_event", "_result", "_error", "_token", "outcome",
    )

    def __init__(self, request_id: int, priority: int, label: str, token: CancelToken):
        self.request_id = request_id
        self.priority = priority
        self.label = label
        self.outcome: str | None = None  # "ok"|"sql-error"|"cancelled"|"timeout"|"failed"|"closed"
        self._event = threading.Event()
        self._result = None
        self._error: BaseException | None = None
        self._token = token

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def cancel(self, reason: str = "cancelled by client") -> None:
        self._token.cancel(reason)

    def result(self, timeout: float | None = None):
        """Block for the outcome; raise the request's typed error."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not resolved within {timeout}s "
                "(still queued or executing; use cancel() to abandon it)"
            )
        if self._error is not None:
            raise self._error
        return self._result

    @property
    def error(self) -> BaseException | None:
        """The resolved error, if any (non-blocking peek)."""
        return self._error if self._event.is_set() else None

    # Resolution (server-side) -----------------------------------------

    def _resolve(self, outcome: str, result=None, error=None) -> None:
        if self._event.is_set():  # first resolution wins
            return
        self.outcome = outcome
        self._result = result
        self._error = error
        self._event.set()


class _Request:
    """Internal carrier: what the dispatch queue holds."""

    __slots__ = ("seq", "priority", "payload", "ticket", "token", "span", "enqueued_at")

    def __init__(self, seq, priority, payload, ticket, token, span, enqueued_at):
        self.seq = seq
        self.priority = priority
        self.payload = payload  # str (SQL) | PlanNode | Q
        self.ticket = ticket
        self.token = token
        self.span = span
        self.enqueued_at = enqueued_at


# Queue items sort by (-priority, cost, seq): higher priority first,
# shortest modeled job first within a priority (see
# :func:`~repro.serve.admission.estimate_service_cost`), and FIFO among
# equal-cost requests. Shutdown sentinels carry +inf priority rank so
# close() drains admitted work before workers exit.


class QueryServer:
    """Concurrent query serving over one shared parallel executor.

    Args:
        db: the database catalog to serve.
        workers: engine morsel-pool threads (default: host cores).
        settings: optimizer settings for every request.
        admission: admission policy; unset limits derive from
            ``workers`` (see :class:`~repro.serve.admission.AdmissionPolicy`).
        retry: backoff policy for :class:`TransientServeError`.
        breaker: circuit breaker over unexpected failures; ``None``
            disables breaking (the default breaker trips after 5
            consecutive failures).
        cache_size: single-flight result-cache capacity (0 disables).
        morsel_rows: engine morsel size (tests shrink it to force many
            morsel boundaries).
        tracer: optional tracer; each request contributes one
            ``request`` root span.
        memory_budget: byte cap on operator working memory (a
            :class:`~repro.engine.spill.MemoryBudget` or an int). With a
            budget, a query whose hash state exceeds RAM is *admitted*
            and completes out-of-core (Grace spill) instead of being
            shed or OOMing the node.
    """

    def __init__(
        self,
        db,
        workers: int | None = None,
        settings=None,
        admission: AdmissionPolicy | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        cache_size: int = 64,
        morsel_rows: int | None = None,
        tracer=None,
        memory_budget=None,
    ):
        self.db = db
        self.tracer = tracer if tracer is not None else NULL_TRACER
        exec_kwargs = {}
        if morsel_rows is not None:
            exec_kwargs["morsel_rows"] = morsel_rows
        if memory_budget is not None:
            exec_kwargs["memory_budget"] = memory_budget
        self.executor = ParallelExecutor(
            db, workers=workers, settings=settings, cache_size=cache_size,
            tracer=self.tracer, **exec_kwargs,
        )
        self.memory_budget = self.executor.memory_budget
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        policy = (admission or AdmissionPolicy()).resolve(self.executor.workers)
        self.admission = AdmissionController(policy, breaker=self.breaker)

        self._queue: "queue.PriorityQueue" = queue.PriorityQueue()
        self._seq = itertools.count()
        self._closed = False
        self._lock = threading.Lock()
        self._completed = metrics.counter("serve.completed")
        self._failed = metrics.counter("serve.failed")
        self._cancelled = metrics.counter("serve.cancelled")
        self._deadline_missed = metrics.counter("serve.deadline_missed")
        self._sql_errors = metrics.counter("serve.sql_errors")
        self._retries = metrics.counter("serve.retries")
        self._service_hist = metrics.histogram("serve.service_s")
        # Live workload history: every successfully planned request feeds
        # the miner, so build_rollups() can materialize cubes for the
        # shapes this server actually sees (not just load-time templates).
        from repro.rollup import WorkloadMiner

        self.miner = WorkloadMiner(db)
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"serve-{i}", daemon=True
            )
            for i in range(policy.max_concurrent)
        ]
        for thread in self._threads:
            thread.start()

    # -- public API -----------------------------------------------------

    def submit(
        self,
        request: "str | PlanNode | Q",
        priority: int = 0,
        timeout_s: float | None = None,
        label: str | None = None,
    ) -> Ticket:
        """Admit one request or raise a typed shed error immediately.

        Returns a :class:`Ticket`; never blocks on execution. Raises
        :class:`~repro.serve.errors.Overloaded` (or its
        ``CircuitOpen`` / ``ServerClosed`` refinements) when shedding.
        """
        if self._closed:
            raise ServerClosed()
        self.admission.admit()
        # Past this point the request owns an admission slot; every
        # path below must end in a worker-side finish/release.
        seq = next(self._seq)
        name = label or f"req-{seq}"
        token = CancelToken.from_timeout(timeout_s)
        ticket = Ticket(seq, priority, name, token)
        span = None
        if self.tracer.enabled:
            span = self.tracer.start("request", name)
            span.annotate(priority=priority, request_id=seq)
            if timeout_s is not None:
                span.annotate(timeout_s=timeout_s)
        req = _Request(seq, priority, request, ticket, token, span, time.monotonic())
        cost = estimate_service_cost(self.db, request, self.executor.settings)
        if span is not None:
            span.annotate(est_cost_s=cost)
        self._queue.put((-priority, cost, seq, req))
        return ticket

    def query(
        self,
        request: "str | PlanNode | Q",
        priority: int = 0,
        timeout_s: float | None = None,
        label: str | None = None,
    ):
        """Blocking convenience: submit and wait for rows or the error."""
        return self.submit(
            request, priority=priority, timeout_s=timeout_s, label=label
        ).result()

    def stats(self) -> dict:
        """Deterministic server-state snapshot (admission + breaker)."""
        snap = self.admission.snapshot()
        snap["breaker"] = self.breaker.state
        snap["closed"] = self._closed
        return dict(sorted(snap.items()))

    def close(self, drain: bool = True) -> None:
        """Stop accepting work and shut down (idempotent).

        ``drain=True`` serves already-admitted requests first;
        ``drain=False`` cancels them (their tickets resolve with
        :class:`~repro.engine.cancel.QueryCancelled`).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if not drain:
            # Flip every queued request's token; workers resolve them
            # as cancelled without executing.
            with self._queue.mutex:
                queued = [item[-1] for item in self._queue.queue]
            for req in queued:
                if req is not None:
                    req.token.cancel("server shutdown")
        for _ in self._threads:
            self._queue.put((float("inf"), 0.0, next(self._seq), None))
        for thread in self._threads:
            thread.join()
        # A submit that raced the close can strand a request behind the
        # sentinels; resolve it as closed rather than leaving a waiter.
        while True:
            try:
                *_, req = self._queue.get_nowait()
            except queue.Empty:
                break
            if req is not None:
                req.ticket._resolve("closed", error=ServerClosed())
                self.admission.release_unstarted()
        self.executor.close()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- dispatch -------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            *_, req = self._queue.get()
            if req is None:
                return
            try:
                self._serve(req)
            except BaseException as exc:  # pragma: no cover - last resort
                # The serving paths below resolve every anticipated
                # outcome; this guard keeps an unanticipated one from
                # killing the worker thread.
                req.ticket._resolve("failed", error=QueryFailed(repr(exc)))
                self.admission.finish(-1.0)

    def _serve(self, req: _Request) -> None:
        queued_s = time.monotonic() - req.enqueued_at
        self.admission.start(queued_s)
        if req.span is not None:
            req.span.annotate(queued_s=queued_s)
        started = time.monotonic()
        try:
            result = self._run_with_retries(req)
        except SqlError as exc:
            self._sql_errors.inc()
            self._finish(req, started, "sql-error", error=exc)
        except DeadlineExceeded as exc:
            self._deadline_missed.inc()
            self._finish(req, started, "timeout", error=exc)
        except QueryInterrupted as exc:
            self._cancelled.inc()
            self._finish(req, started, "cancelled", error=exc)
        except Exception as exc:
            self.breaker.record_failure()
            self._failed.inc()
            failure = QueryFailed(
                f"query execution failed: {type(exc).__name__}: {exc}"
            )
            failure.__cause__ = exc
            self._finish(req, started, "failed", error=failure)
        else:
            self.breaker.record_success()
            self._completed.inc()
            self._finish(req, started, "ok", result=result)

    def _finish(self, req: _Request, started: float, outcome: str,
                result=None, error=None) -> None:
        service_s = time.monotonic() - started
        # Shed/cancelled requests must not drag the EWMA toward zero —
        # only real service times feed the delay projection.
        self.admission.finish(service_s if outcome == "ok" else -1.0)
        if outcome == "ok":
            self._service_hist.observe(service_s)
        if req.span is not None:
            req.span.annotate(outcome=outcome, service_s=service_s)
            if error is not None:
                req.span.annotate(error=type(error).__name__)
            self.tracer.finish(req.span)
            self.tracer.finalize(req.span)
        req.ticket._resolve(outcome, result=result, error=error)

    # -- execution ------------------------------------------------------

    def _run_with_retries(self, req: _Request):
        attempt = 0
        while True:
            req.token.check()
            try:
                return self._execute(req)
            except TransientServeError:
                if attempt >= self.retry.max_retries:
                    raise
                self._retries.inc()
                wait = self.retry.backoff_s(attempt)
                if req.span is not None:
                    req.span.event("retry", attempt=attempt, backoff_s=wait)
                remaining = req.token.remaining_s()
                if remaining is not None and remaining <= wait:
                    raise DeadlineExceeded(
                        "deadline would expire during retry backoff"
                    )
                time.sleep(wait)
                attempt += 1

    def _plan(self, req: _Request):
        payload = req.payload
        if isinstance(payload, str):
            return parse_sql(self.db, payload)
        if isinstance(payload, (PlanNode, Q)):
            return payload
        raise SqlError(
            f"unsupported request payload type {type(payload).__name__}; "
            "expected SQL text or a plan"
        )

    def _execute(self, req: _Request):
        """One execution attempt. Split out so tests can inject
        transient faults by overriding/patching this method."""
        plan = self._plan(req)
        self.miner.observe(plan, settings=self.executor.settings)
        return self.executor.execute(
            plan, label=req.ticket.label, parent_span=req.span, cancel=req.token
        )

    def build_rollups(self, min_count: int = 2, **kwargs):
        """Materialize cubes for the aggregate shapes observed in live
        traffic (seen at least ``min_count`` times) and attach them to
        the served database. New cubes extend an existing catalog (specs
        an existing cube already subsumes are skipped); subsequent
        requests route automatically. Returns the active catalog."""
        from repro.rollup import build_rollups
        from repro.rollup.builder import refresh_rollup_gauges

        existing = getattr(self.db, "rollups", None)
        specs = self.miner.mine(min_count=min_count)
        if existing is not None:
            specs = [
                s
                for s in specs
                if not any(cube.spec.subsumes(s) for cube in existing.cubes)
            ]
        fresh = build_rollups(
            self.db,
            specs,
            settings=self.executor.settings,
            start_index=len(existing.cubes) if existing is not None else 0,
            **kwargs,
        )
        if existing is None:
            self.db.rollups = fresh
            return fresh
        for cube in fresh.cubes:
            existing._register(cube)
        existing.build_profile.absorb(fresh.build_profile)
        existing.build_wall_seconds += fresh.build_wall_seconds
        existing.candidates_considered += fresh.candidates_considered
        existing.candidates_rejected += fresh.candidates_rejected
        refresh_rollup_gauges(existing)
        return existing
