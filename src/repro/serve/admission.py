"""Admission control: bounded queue, concurrency limits, load shedding.

The admission controller answers one question at the front door: *if we
accept this request, will it be served within its patience?* Three
checks, all O(1) under one lock:

1. **Concurrency + queue bound** — at most ``max_concurrent`` queries
   execute at once (derived from the engine's worker count: each
   in-flight query multiplexes the same morsel pool, so more concurrent
   queries than workers only adds queueing inside the engine), and at
   most ``queue_capacity`` requests wait behind them. A full queue
   sheds with ``Overloaded("queue-full")``.
2. **Projected queue delay** — an EWMA of recent service times projects
   how long the backlog will take to drain
   (``waiting * ewma_service_s / max_concurrent``). When that exceeds
   ``max_queue_delay_s`` the request is shed with
   ``Overloaded("queue-delay")`` *before* it wastes queue residency —
   shedding early is the difference between a latency cliff and a
   throughput plateau.
3. **Circuit breaker** — repeated unexpected executor failures trip the
   breaker (see :mod:`repro.serve.policy`); while open, requests shed
   with :class:`~repro.serve.errors.CircuitOpen` without touching the
   queue.

Every decision lands in the process-wide metrics registry:
``serve.admitted`` / ``serve.shed`` counters (plus per-reason shed
counters), a ``serve.queue_depth`` gauge, and a
``serve.queue_delay_s`` histogram of realized waits.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.obs.metrics import metrics

from .errors import CircuitOpen, Overloaded
from .policy import CircuitBreaker

__all__ = ["AdmissionController", "AdmissionPolicy", "estimate_service_cost"]


def estimate_service_cost(db, payload, settings=None) -> float:
    """Modeled service cost of one request, for shortest-job-first
    dispatch among equal-priority queued requests.

    The estimate is the performance model's predicted scan time on the
    paper's Pi: optimize the plan (so rollup routing and column pruning
    are reflected — a routed dashboard query is correctly predicted to
    be near-free), sum the bytes its scans stream, and price that as one
    synthetic scan operator. Deliberately coarse: it only has to *rank*
    queued requests, not predict latency.

    Never raises. Unparsable or unplannable payloads cost ``0.0`` —
    resolving an error ticket is the shortest job of all.
    """
    try:
        from repro.engine.optimizer import DEFAULT_SETTINGS, optimize_plan
        from repro.engine.plan import Q, ScanNode
        from repro.engine.profile import WorkProfile
        from repro.hardware import PI_KEY, PerformanceModel, get_platform

        plan = payload
        if isinstance(payload, str):
            from repro.engine.sql import sql as parse_sql

            plan = parse_sql(db, payload)
        node = plan.node if isinstance(plan, Q) else plan
        if node is None:
            return 0.0
        node = optimize_plan(node, db, settings or DEFAULT_SETTINGS)
        profile = WorkProfile()
        work = profile.new_operator("scan")
        stack = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, ScanNode):
                table = db.table(current.table)
                names = (
                    current.columns
                    if current.columns is not None
                    else table.column_names
                )
                seen = set(names)
                if current.predicate is not None:
                    seen |= current.predicate.references()
                for name in seen:
                    if name in table.columns:
                        work.seq_bytes += table.columns[name].nbytes
                work.tuples_in += table.nrows
                work.tuples_out += table.nrows
            stack.extend(current.children())
        return PerformanceModel().predict(profile, get_platform(PI_KEY))
    except Exception:
        return 0.0

# Weight of the newest observation in the service-time EWMA. High enough
# to track load shifts within a few requests, low enough not to whipsaw
# on one slow query.
_EWMA_ALPHA = 0.3


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs for the admission controller.

    Attributes:
        max_concurrent: queries executing simultaneously. ``None``
            derives it from the engine worker count at server build
            time (one query per worker: the morsel pool is the shared
            resource being protected).
        queue_capacity: requests allowed to wait beyond the concurrent
            ones. ``None`` derives ``4 * max_concurrent``.
        max_queue_delay_s: shed once the projected time a new request
            would wait in queue exceeds this.
        initial_service_s: seed for the service-time EWMA before any
            request has completed (pessimistic-ish so a cold server
            does not over-admit).
    """

    max_concurrent: int | None = None
    queue_capacity: int | None = None
    max_queue_delay_s: float = 2.0
    initial_service_s: float = 0.05

    def __post_init__(self):
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if self.queue_capacity is not None and self.queue_capacity < 0:
            raise ValueError("queue_capacity must be >= 0")
        if self.max_queue_delay_s <= 0:
            raise ValueError("max_queue_delay_s must be positive")
        if self.initial_service_s <= 0:
            raise ValueError("initial_service_s must be positive")

    def resolve(self, workers: int) -> "AdmissionPolicy":
        """Fill the derived fields from the engine worker count."""
        max_concurrent = self.max_concurrent or max(1, workers)
        queue_capacity = (
            self.queue_capacity
            if self.queue_capacity is not None
            else 4 * max_concurrent
        )
        return AdmissionPolicy(
            max_concurrent=max_concurrent,
            queue_capacity=queue_capacity,
            max_queue_delay_s=self.max_queue_delay_s,
            initial_service_s=self.initial_service_s,
        )


class AdmissionController:
    """Thread-safe admit/release ledger implementing the policy above."""

    def __init__(self, policy: AdmissionPolicy, breaker: CircuitBreaker | None = None):
        if policy.max_concurrent is None or policy.queue_capacity is None:
            raise ValueError("policy must be resolved (max_concurrent set)")
        self.policy = policy
        self.breaker = breaker
        self._lock = threading.Lock()
        self._running = 0
        self._waiting = 0
        self._ewma_service_s = policy.initial_service_s
        self._admitted = metrics.counter("serve.admitted")
        self._shed = metrics.counter("serve.shed")
        self._queue_depth = metrics.gauge("serve.queue_depth")
        self._queue_delay = metrics.histogram("serve.queue_delay_s")

    # -- the front-door decision ---------------------------------------

    def admit(self) -> None:
        """Claim a slot for one request or raise a typed shed error.

        On success the request counts as *waiting* until
        :meth:`start` moves it to *running*; every admit must be paired
        with exactly one :meth:`release` (even on failure paths).
        """
        if self.breaker is not None and not self.breaker.allow():
            self._count_shed("circuit-open")
            raise CircuitOpen(
                "circuit breaker open after repeated executor failures; "
                "failing fast until cooldown"
            )
        policy = self.policy
        with self._lock:
            if self._waiting >= policy.queue_capacity:
                self._count_shed("queue-full")
                raise Overloaded(
                    f"admission queue full "
                    f"({self._waiting} waiting, capacity {policy.queue_capacity})",
                    reason="queue-full",
                )
            projected = self._projected_delay_locked()
            if projected > policy.max_queue_delay_s:
                self._count_shed("queue-delay")
                raise Overloaded(
                    f"projected queue delay {projected:.3f}s exceeds bound "
                    f"{policy.max_queue_delay_s:.3f}s",
                    reason="queue-delay",
                )
            self._waiting += 1
            self._queue_depth.set(self._waiting)
        self._admitted.inc()

    def _projected_delay_locked(self) -> float:
        # Requests ahead of a new arrival: everything waiting plus the
        # running excess over the concurrency limit (never negative).
        backlog = self._waiting + max(
            0, self._running - self.policy.max_concurrent
        )
        return backlog * self._ewma_service_s / self.policy.max_concurrent

    def _count_shed(self, reason: str) -> None:
        self._shed.inc()
        metrics.counter(f"serve.shed.{reason}").inc()

    # -- lifecycle transitions -----------------------------------------

    def start(self, queued_s: float) -> None:
        """A worker picked the request up after ``queued_s`` in queue."""
        with self._lock:
            self._waiting = max(0, self._waiting - 1)
            self._running += 1
            self._queue_depth.set(self._waiting)
        self._queue_delay.observe(queued_s)

    def finish(self, service_s: float) -> None:
        """The request finished executing (any outcome); feeds the EWMA."""
        with self._lock:
            self._running = max(0, self._running - 1)
            if service_s >= 0:
                self._ewma_service_s = (
                    (1 - _EWMA_ALPHA) * self._ewma_service_s
                    + _EWMA_ALPHA * service_s
                )

    def release_unstarted(self) -> None:
        """An admitted request never ran (cancelled in queue, drain)."""
        with self._lock:
            self._waiting = max(0, self._waiting - 1)
            self._queue_depth.set(self._waiting)

    # -- introspection --------------------------------------------------

    def snapshot(self) -> dict:
        """Deterministic (key-sorted) controller state."""
        with self._lock:
            return {
                "ewma_service_s": self._ewma_service_s,
                "max_concurrent": self.policy.max_concurrent,
                "queue_capacity": self.policy.queue_capacity,
                "running": self._running,
                "waiting": self._waiting,
            }
