"""Platform catalog, performance model, and energy model.

This package is the reproduction's substitute for the paper's physical
testbed: platform specs come from the paper's Table I, and a calibrated
roofline model converts engine work profiles into per-platform runtimes.
"""

from .calibration import (
    CalibrationConstants,
    DEFAULT_CONSTANTS,
    DEFAULT_PLATFORM_FACTORS,
    fit_constants,
    fit_serial_fraction,
)
from .energy import EnergyEstimate, EnergyModel
from .perfmodel import (
    MeasuredScaling,
    PerformanceModel,
    RuntimeBreakdown,
    measure_parallel_scaling,
)
from .platforms import (
    ALL_KEYS,
    CLOUD,
    KWH_PRICE_USD,
    ON_PREMISES,
    PI_KEY,
    PI4_KEY,
    PLATFORMS,
    SBC,
    SERVER_KEYS,
    PlatformSpec,
    get_platform,
)

__all__ = [
    "ALL_KEYS", "CLOUD", "CalibrationConstants", "DEFAULT_CONSTANTS",
    "DEFAULT_PLATFORM_FACTORS", "EnergyEstimate", "EnergyModel",
    "KWH_PRICE_USD", "MeasuredScaling", "ON_PREMISES", "PI_KEY", "PI4_KEY",
    "PLATFORMS", "PerformanceModel", "PlatformSpec", "RuntimeBreakdown",
    "SBC", "SERVER_KEYS", "fit_constants", "fit_serial_fraction",
    "get_platform", "measure_parallel_scaling",
]
