"""Energy model (Section III-B of the paper).

Active energy follows the paper's methodology exactly: runtime x TDP,
where TDP is the CPU's per-socket figure (doubled for the dual-socket
on-premises servers) and, for the Pi, the whole board's 5.1 W peak draw —
a deliberately pessimistic accounting for the SBC, as the paper notes.

The model additionally exposes idle power and an energy-proportionality
curve (Section III-B2's discussion), which the paper argues is the SBC
cluster's structural advantage: nodes can be powered off individually.
"""

from __future__ import annotations

from dataclasses import dataclass

from .platforms import KWH_PRICE_USD, PlatformSpec

__all__ = ["EnergyModel", "EnergyEstimate"]


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy for one query execution."""

    runtime_s: float
    power_w: float

    @property
    def joules(self) -> float:
        return self.runtime_s * self.power_w

    @property
    def watt_hours(self) -> float:
        return self.joules / 3600.0

    @property
    def electricity_cost_usd(self) -> float:
        return self.watt_hours / 1000.0 * KWH_PRICE_USD


class EnergyModel:
    """Per-platform power and energy accounting."""

    def active_power(self, platform: PlatformSpec, nodes: int = 1) -> float:
        """Peak active power in watts for ``nodes`` units of a platform
        (TDP-based, per the paper; raises for cloud SKUs whose TDP is not
        public — the paper likewise excludes them from Fig. 7)."""
        if platform.total_tdp_w is None:
            raise ValueError(
                f"platform {platform.key!r} has no public TDP; the paper's "
                "energy comparison covers only on-premises servers and the Pi"
            )
        return platform.total_tdp_w * nodes

    def idle_power(self, platform: PlatformSpec, nodes: int = 1) -> float:
        return platform.idle_w * platform.sockets * nodes

    def query_energy(
        self, platform: PlatformSpec, runtime_s: float, nodes: int = 1
    ) -> EnergyEstimate:
        """Active energy of a query run (paper methodology: full TDP for
        the whole runtime)."""
        return EnergyEstimate(runtime_s, self.active_power(platform, nodes))

    def proportionality_curve(
        self, platform: PlatformSpec, utilizations: list[float], nodes: int = 1
    ) -> list[float]:
        """Power draw at each utilization in [0, 1], modeling a linear
        idle-to-peak ramp per node. For a *cluster*, unused nodes can be
        powered off entirely (the paper's fine-grained scaling argument),
        so cluster power steps with ceil(utilization x nodes)."""
        idle = self.idle_power(platform, 1)
        peak = self.active_power(platform, 1)
        curve = []
        for u in utilizations:
            if not 0.0 <= u <= 1.0:
                raise ValueError(f"utilization must be in [0, 1], got {u}")
            if nodes == 1:
                curve.append(idle + (peak - idle) * u)
            else:
                import math

                active_nodes = math.ceil(u * nodes)
                # Active nodes run at full utilization; the rest are off.
                curve.append(active_nodes * peak)
        return curve

    def hourly_cost_usd(self, platform: PlatformSpec, nodes: int = 1) -> float:
        """Electricity cost per hour at peak draw (how the paper derives
        the Pi's $0.0004/hour figure)."""
        return self.active_power(platform, nodes) / 1000.0 * KWH_PRICE_USD
