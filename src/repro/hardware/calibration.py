"""Calibration constants for the performance model.

The model's per-platform inputs are fixed spec-sheet values
(:mod:`repro.hardware.platforms`); this module holds the small set of
*global* constants that map counted engine work onto hardware resource
demand. Defaults were chosen by fitting predicted TPC-H SF 1 runtimes
against the paper's published Table II with
:func:`fit_constants` (log-space least squares over all 22 queries x 10
platforms) and then frozen, so the library needs no scipy at import time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "CalibrationConstants", "DEFAULT_CONSTANTS", "fit_constants",
    "fit_serial_fraction",
]


@dataclass(frozen=True)
class CalibrationConstants:
    """Global work-to-hardware translation constants.

    Attributes:
        cycles_per_op: proxy CPU operations per counted engine op. This
            absorbs the DBMS interpretation overhead (MonetDB executes
            many instructions per logical value touched).
        bytes_factor: actual bytes moved per counted byte (full
            materialization echoes intermediates through memory).
        rand_latency_factor: multiplier on the platform DRAM latency per
            counted random access.
        llc_resident_discount: random-access latency factor when the
            working structure fits in LLC.
        working_set_factor: counted output bytes are multiplied by this
            to estimate the random-access working-structure size.
        mlp_per_core: outstanding misses a core can overlap.
        dispatch_ops: fixed per-operator dispatch cost in proxy ops
            (query setup, BAT bookkeeping), paid at single-core speed.
        smt_boost: throughput multiplier from Hyper-Threading on
            compute-bound work.
        parallel_efficiency: global multi-core scaling efficiency.
        serial_fraction: Amdahl serial fraction of compute work per query
            (MonetDB does not saturate 40 threads on sub-second queries).
        mem_serial_fraction: Amdahl serial fraction for memory streaming
            (one query rarely drives a machine's full aggregate bandwidth).
        zone_probe_ops: proxy ops charged per zone-map block probe — a
            min/max comparison against cached statistics, so skipped
            blocks cost cycles (a few per 4096 rows) instead of bytes.
        gather_line_bytes: bytes fetched per random access when a late
            selection vector is materialized at a pipeline breaker — one
            cache line of gathered payload per deferred-row touch.
        encoded_eval_op_fraction: proxy ops per row evaluated directly on
            an encoded payload. A packed-domain comparison is one narrow
            SIMD-friendly compare with no decode, versus the full
            ``cycles_per_op`` a decoded-domain op costs — a small
            fraction of one counted op.
        run_eval_ops: proxy ops per encoded segment (RLE run, FoR block,
            bit-packed array) an encoded kernel visits: range clipping,
            constant translation, and per-segment dispatch.
        decoded_byte_fraction: memory-term weight per plain-domain byte a
            compressed column materialized while decoding. Decoded
            buffers are written and immediately re-read while still
            cache-warm, so they cost less than a cold ``seq_bytes``
            stream — but not nothing, which is the bandwidth saving
            compressed execution exists to expose.
        spill_write_gbs: sustained sequential write bandwidth (GB/s) of
            the wimpy node's storage — SD-card class by default, the
            paper's Pi 3B+ baseline. Each spilled byte is written once.
        spill_read_gbs: sustained sequential read bandwidth (GB/s) of
            the same storage; every spilled partition is read back
            exactly once by the Grace build/probe pass.
        spill_partition_ops: proxy ops per spill partition file — open,
            header framing, encode/decode dispatch, close.
    """

    cycles_per_op: float = 22.1
    bytes_factor: float = 1.5
    rand_latency_factor: float = 0.3
    llc_resident_discount: float = 0.18
    working_set_factor: float = 1.0
    mlp_per_core: float = 4.0
    dispatch_ops: float = 4.0e6
    smt_boost: float = 1.25
    parallel_efficiency: float = 0.80
    serial_fraction: float = 0.02
    mem_serial_fraction: float = 0.0666
    zone_probe_ops: float = 4.0
    gather_line_bytes: float = 64.0
    encoded_eval_op_fraction: float = 0.25
    run_eval_ops: float = 6.0
    decoded_byte_fraction: float = 0.3
    spill_write_gbs: float = 0.025
    spill_read_gbs: float = 0.040
    spill_partition_ops: float = 5.0e4

    def replaced(self, **kwargs) -> "CalibrationConstants":
        return replace(self, **kwargs)


DEFAULT_CONSTANTS = CalibrationConstants()

# Per-platform DBMS efficiency factors (predicted time is multiplied by
# this). The spec-sheet model cannot see how well MonetDB's runtime maps
# onto a particular machine (NUMA layout, allocator behaviour, kernel);
# these scalars are calibrated against the paper's published Table II
# (geometric mean of observed/predicted per platform, alternated with the
# global fit) and frozen. They are an instrument calibration, not a
# fudge-per-query: one number per machine, constant across all 22 queries
# and reused unchanged for SF 10, the cluster study, and the strategy
# study. Values near 1.0 mean the spec model alone was already right.
DEFAULT_PLATFORM_FACTORS: dict[str, float] = {
    "op-e5": 1.179,
    "op-gold": 1.256,
    "c4.8xlarge": 0.703,
    "m4.10xlarge": 0.623,
    "m4.16xlarge": 0.706,
    "z1d.metal": 1.469,
    "m5.metal": 1.228,
    "a1.metal": 1.205,
    "c6g.metal": 1.485,
    "pi3b+": 0.540,
    # Extension platform (SIII-C1); assumed to share the Pi 3B+'s DBMS
    # efficiency profile (same OS/DBMS build, similar ARM core family).
    "pi4b-8gb": 0.540,
}


def fit_serial_fraction(
    worker_counts: "list[int]", speedups: "list[float]"
) -> float:
    """Least-squares Amdahl serial fraction from a measured scaling curve.

    Fits ``1/S(n) = f + (1 - f)/n`` over the measured ``(n, S)`` points.
    Substituting ``y = 1/S - 1/n`` and ``a = 1 - 1/n`` makes the model
    linear (``y = f * a``), so the fit is closed-form — no scipy needed
    at measurement time.

    Used to recalibrate the performance model's assumed ``serial_fraction``
    from *real* multi-worker engine runs (see
    :func:`repro.hardware.perfmodel.measure_parallel_scaling`) instead of
    the frozen Table II fit.
    """
    if len(worker_counts) != len(speedups):
        raise ValueError("worker_counts and speedups must align")
    num = den = 0.0
    for n, s in zip(worker_counts, speedups):
        if n <= 1 or s <= 0:
            continue
        a = 1.0 - 1.0 / n
        y = 1.0 / s - 1.0 / n
        num += a * y
        den += a * a
    if den == 0.0:
        return DEFAULT_CONSTANTS.serial_fraction
    return float(min(1.0, max(0.0, num / den)))


def fit_constants(
    observed: dict[str, dict[int, float]],
    profiles: dict[int, "object"],
    platforms: dict[str, "object"],
    initial: CalibrationConstants | None = None,
) -> CalibrationConstants:
    """Fit the four dominant constants against published runtimes.

    Args:
        observed: ``{platform_key: {query_number: seconds}}`` — e.g. the
            paper's Table II.
        profiles: ``{query_number: WorkProfile}`` at the *same scale
            factor* as the observations.
        platforms: ``{platform_key: PlatformSpec}``.
        initial: starting constants (default: current defaults).

    Returns the fitted constants. Requires scipy (not needed at runtime —
    fitted values are frozen in :data:`DEFAULT_CONSTANTS`).
    """
    import numpy as np
    from scipy.optimize import least_squares

    from .perfmodel import PerformanceModel

    base = initial or DEFAULT_CONSTANTS
    keys = [
        "cycles_per_op", "bytes_factor", "rand_latency_factor",
        "dispatch_ops", "serial_fraction", "mem_serial_fraction",
    ]
    # Bounds keep the model physically meaningful: the memory and random
    # terms must not be optimized away (the Pi's memory-bound behaviour —
    # the paper's Q1 story — depends on them).
    bounds_lo = np.log([4.0, 1.5, 0.3, 1e5, 0.02, 0.05])
    bounds_hi = np.log([120.0, 12.0, 3.0, 4e6, 0.50, 0.60])
    x0 = np.clip(np.log([getattr(base, k) for k in keys]), bounds_lo, bounds_hi)

    pairs = [
        (platform_key, number, seconds)
        for platform_key, per_query in observed.items()
        for number, seconds in per_query.items()
        if number in profiles and seconds is not None
    ]

    def residuals(x):
        constants = base.replaced(**{k: float(np.exp(v)) for k, v in zip(keys, x)})
        model = PerformanceModel(constants)
        out = []
        for platform_key, number, seconds in pairs:
            predicted = model.predict(profiles[number], platforms[platform_key])
            out.append(np.log(max(predicted, 1e-6)) - np.log(seconds))
        return np.asarray(out)

    fit = least_squares(
        residuals, x0, method="trf", bounds=(bounds_lo, bounds_hi), max_nfev=200
    )
    return base.replaced(**{k: float(np.exp(v)) for k, v in zip(keys, fit.x)})
