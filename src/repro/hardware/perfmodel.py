"""Roofline performance model: WorkProfile × PlatformSpec → seconds.

This is the reproduction's substitute for running MonetDB on real
hardware (the paper's repro gate). Per operator, the model takes the
maximum of three resource times (they overlap on an out-of-order core):

* compute — counted scalar ops × an interpretation factor, divided by the
  platform's parallel integer throughput for the operator class;
* sequential memory — bytes streamed divided by the platform's bandwidth
  at the thread count (bandwidth saturates; SMT does not help it);
* random access — probes/gathers × DRAM latency, discounted when the
  working structure fits in LLC, divided by the achievable memory-level
  parallelism.

A per-operator dispatch overhead (MonetDB's interpreter) runs at
single-core speed. Global constants live in
:mod:`repro.hardware.calibration` and were fitted against the paper's
published Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import OperatorWork, WorkProfile

from .calibration import (
    CalibrationConstants,
    DEFAULT_CONSTANTS,
    DEFAULT_PLATFORM_FACTORS,
    fit_serial_fraction,
)
from .platforms import PlatformSpec

__all__ = [
    "MeasuredScaling",
    "PerformanceModel",
    "RuntimeBreakdown",
    "measure_parallel_scaling",
]

# Parallel efficiency by operator class: scans split perfectly, hash
# builds and sorts serialize on shared structures.
_OPERATOR_PARALLEL_EFF = {
    "scan": 1.0,
    "filter": 0.95,
    "project": 0.95,
    "hashjoin": 0.75,
    "aggregate": 0.70,
    "sort": 0.55,
    "topk": 0.90,
    "distinct": 0.70,
    "unionall": 1.0,
    "limit": 1.0,
}


@dataclass
class RuntimeBreakdown:
    """Predicted runtime with its resource decomposition (seconds)."""

    total: float
    compute: float
    memory: float
    random: float
    dispatch: float
    # Storage I/O of out-of-core (Grace) operators: spilled bytes priced
    # at the platform-independent wimpy-storage bandwidths (one write +
    # one read-back per byte) plus per-partition-file overhead. Disk does
    # not overlap the roofline max — an SD card is nobody's fast path.
    spill: float = 0.0


@dataclass(frozen=True)
class MeasuredScaling:
    """A measured intra-query speedup curve: ``(workers, speedup)`` points.

    Produced by :func:`measure_parallel_scaling` from real multi-worker
    :class:`~repro.engine.ParallelExecutor` runs. When handed to
    :class:`PerformanceModel`, per-platform core-count scaling follows
    this curve (interpolated, flat beyond the last measured point)
    instead of the assumed-linear Amdahl law.
    """

    points: tuple[tuple[float, float], ...]

    def __post_init__(self):
        if not self.points:
            raise ValueError("a scaling curve needs at least one point")
        object.__setattr__(
            self, "points", tuple(sorted((float(n), float(s)) for n, s in self.points))
        )

    def speedup(self, workers: float) -> float:
        """Piecewise-linear interpolated speedup at ``workers`` threads."""
        pts = self.points
        if workers <= pts[0][0]:
            return pts[0][1] if pts[0][0] > 1 else max(1.0, pts[0][1] * workers / pts[0][0])
        for (n0, s0), (n1, s1) in zip(pts, pts[1:]):
            if workers <= n1:
                t = (workers - n0) / (n1 - n0)
                return s0 + t * (s1 - s0)
        return pts[-1][1]  # flat extrapolation: no free linear scaling

    @property
    def serial_fraction(self) -> float:
        """Amdahl serial fraction fitted to the measured points."""
        return fit_serial_fraction(
            [int(n) for n, _ in self.points], [s for _, s in self.points]
        )


def measure_parallel_scaling(
    db,
    plans,
    worker_counts=(1, 2, 4),
    repeats: int = 3,
    morsel_rows: int | None = None,
) -> MeasuredScaling:
    """Measure the engine's real multi-worker speedup curve.

    Runs each plan through :class:`~repro.engine.ParallelExecutor` at
    each worker count (result cache off, best-of-``repeats`` wall clock)
    and returns the geometric-mean speedup relative to one worker. This
    is the calibration input the ISSUE's Fig. 3 / Table II sweeps feed
    back into the performance model.
    """
    import math

    from repro.engine import ParallelExecutor
    from repro.engine.morsel import DEFAULT_MORSEL_ROWS

    worker_counts = sorted(set(int(w) for w in worker_counts))
    if not worker_counts or worker_counts[0] < 1:
        raise ValueError("worker counts must be positive")
    rows = morsel_rows or DEFAULT_MORSEL_ROWS
    best: dict[int, list[float]] = {w: [] for w in worker_counts}
    for plan in plans:
        for w in worker_counts:
            with ParallelExecutor(db, workers=w, morsel_rows=rows, cache_size=0) as ex:
                wall = min(ex.execute(plan).wall_seconds for _ in range(max(1, repeats)))
            best[w].append(max(wall, 1e-9))
    baseline = best[worker_counts[0]]
    points = []
    for w in worker_counts:
        ratios = [b / t for b, t in zip(baseline, best[w])]
        geo = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        points.append((float(w), geo))
    return MeasuredScaling(tuple(points))


class PerformanceModel:
    """Converts work profiles into predicted runtimes per platform."""

    def __init__(
        self,
        constants: CalibrationConstants | None = None,
        platform_factors: dict[str, float] | None = None,
        scaling: MeasuredScaling | None = None,
    ):
        self.constants = constants or DEFAULT_CONSTANTS
        self.platform_factors = (
            platform_factors if platform_factors is not None else DEFAULT_PLATFORM_FACTORS
        )
        # Optional measured intra-query scaling curve. When present, the
        # compute term's multi-core speedup is read off the curve (scaled
        # by the operator-class efficiency) rather than derived from the
        # assumed Amdahl serial fraction.
        self.scaling = scaling

    # ------------------------------------------------------------------

    def operator_time(
        self, op: OperatorWork, platform: PlatformSpec, threads: int
    ) -> tuple[float, float, float]:
        """(compute, sequential-memory, random-access) times for one
        operator at ``threads`` threads."""
        c = self.constants
        eff = _OPERATOR_PARALLEL_EFF.get(op.operator, 0.8)
        threads = min(threads, platform.db_parallel_cap)
        cores_used = min(threads, platform.total_cores)
        boost = c.smt_boost if (platform.smt > 1 and threads > platform.total_cores) else 1.0
        if self.scaling is not None:
            # Calibrated path: interpolate the measured speedup at this
            # thread count; operator classes that serialize on shared
            # structures keep only a fraction of the measured gain.
            measured = self.scaling.speedup(cores_used * boost)
            speedup = 1.0 + (measured - 1.0) * eff
        else:
            # Amdahl-limited compute scaling: one query does not keep 40
            # threads busy end to end.
            n_eff = max(1.0, cores_used * boost * eff * c.parallel_efficiency)
            f = c.serial_fraction
            speedup = 1.0 / (f + (1.0 - f) / n_eff)
        rate = platform.core_rate("int") * speedup
        # Zone-map probes are the compute price of data skipping: bytes a
        # scan proved skippable (op.skipped_bytes) never enter the memory
        # term, but each block consulted costs a few proxy ops here.
        # Encoded-domain evaluation trades decode bandwidth for narrow
        # compares: rows touched in the packed domain cost a fraction of
        # a counted op, plus a per-segment (run/block) dispatch charge.
        compute = (
            op.ops
            + op.zone_probes * c.zone_probe_ops
            + op.encoded_eval_rows * c.encoded_eval_op_fraction
            + op.runs_touched * c.run_eval_ops
        ) * c.cycles_per_op / rate

        # Memory bandwidth: hardware saturation curve, further limited by
        # the query's own streaming parallelism.
        fm = c.mem_serial_fraction
        mem_speedup = 1.0 / (fm + (1.0 - fm) / max(1.0, cores_used))
        bandwidth = min(
            platform.mem_bandwidth(threads),
            platform.mem_bw_1core_gbs * 1e9 * mem_speedup,
        )
        # Decoded buffers are produced and consumed cache-warm, so they
        # are discounted relative to cold streamed bytes; encoded-eval
        # paths that skip the decode simply never charge them.
        seq = (
            op.seq_bytes + op.out_bytes + op.decoded_bytes * c.decoded_byte_fraction
        ) * c.bytes_factor / bandwidth

        resident = op.out_bytes * c.working_set_factor <= platform.total_llc_bytes
        latency = platform.dram_latency_ns * 1e-9 * c.rand_latency_factor
        if resident:
            latency *= c.llc_resident_discount
        mlp = min(threads, platform.total_cores) * c.mlp_per_core
        # Deferred gathers (late materialization) are random by nature:
        # price each cache line of gathered payload as one access. The
        # bytes the selection vector *saved* (op.saved_bytes) never enter
        # the sequential term at all — that is the optimization.
        gather_accesses = op.gather_bytes / c.gather_line_bytes
        random = (op.rand_accesses + gather_accesses) * latency / max(1.0, mlp)
        return compute, seq, random

    def breakdown(
        self, profile: WorkProfile, platform: PlatformSpec, threads: int | None = None
    ) -> RuntimeBreakdown:
        """Predict a query runtime with its resource decomposition."""
        c = self.constants
        if threads is None:
            threads = platform.total_cores * platform.smt
        total = compute_sum = seq_sum = rand_sum = spill_sum = 0.0
        for op in profile.operators:
            compute, seq, random = self.operator_time(op, platform, threads)
            # Spill I/O is additive, not part of the roofline max: the
            # storage device is orders slower than DRAM, so writes and
            # read-backs serialize behind the in-memory work.
            spill = (
                op.spilled_bytes / (c.spill_write_gbs * 1e9)
                + op.spilled_bytes / (c.spill_read_gbs * 1e9)
                + op.spill_partitions * c.spill_partition_ops
                / platform.core_rate("int")
            )
            total += max(compute, seq, random) + spill
            compute_sum += compute
            seq_sum += seq
            rand_sum += random
            spill_sum += spill
        dispatch = len(profile.operators) * c.dispatch_ops / platform.core_rate("int")
        factor = self.platform_factors.get(platform.key, 1.0)
        return RuntimeBreakdown(
            total=(total + dispatch) * factor,
            compute=compute_sum * factor,
            memory=seq_sum * factor,
            random=rand_sum * factor,
            dispatch=dispatch * factor,
            spill=spill_sum * factor,
        )

    def predict(
        self, profile: WorkProfile, platform: PlatformSpec, threads: int | None = None
    ) -> float:
        """Predicted runtime in seconds for ``profile`` on ``platform``."""
        return self.breakdown(profile, platform, threads).total
