"""The study's hardware comparison points (Table I) as data.

Published spec-sheet values (frequency, cores, LLC, MSRP, hourly price,
TDP) are taken directly from the paper's Table I. Microarchitectural
throughput parameters (per-core IPC proxies for float / integer /
division-heavy work, memory bandwidth, random-access latency) are not in
the paper; they are assigned from public microarchitecture knowledge and
constrained by the paper's own narrated microbenchmark ratios (Fig. 2) —
see DESIGN.md §2 and :mod:`repro.hardware.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PlatformSpec", "PLATFORMS", "get_platform", "ON_PREMISES", "CLOUD", "SBC",
           "SERVER_KEYS", "ALL_KEYS", "KWH_PRICE_USD", "PI_KEY", "PI4_KEY"]

# US national average electricity price used by the paper for the Pi's
# hourly cost estimate ($/kWh).
KWH_PRICE_USD = 0.0766

PI_KEY = "pi3b+"


@dataclass(frozen=True)
class PlatformSpec:
    """One comparison point.

    Attributes:
        key: short identifier used throughout the study (e.g. ``op-e5``).
        category: ``on-premises`` | ``cloud`` | ``sbc``.
        cpu: marketing CPU name.
        freq_ghz: sustained clock frequency.
        cores: physical cores per socket (as listed in Table I).
        sockets: sockets in the machine (the paper's on-premises servers
            are dual-socket; its MSRP analysis doubles their list price).
        smt: hardware threads per core (2 for Hyper-Threaded Xeons).
        llc_mb: last-level cache per socket.
        msrp_usd: list price per socket (None for custom cloud SKUs).
        hourly_usd: on-demand hourly price (None for on-premises).
        tdp_w: thermal design power per socket; for the Pi this is the
            whole board's peak draw, as in the paper.
        ipc_flt / ipc_int / ipc_div: per-core sustained
            operations-per-cycle proxies for float-heavy (Whetstone),
            integer/branch (Dhrystone), and division/modulo-heavy
            (sysbench prime) instruction mixes.
        mem_bw_1core_gbs / mem_bw_all_gbs: sustained sequential memory
            bandwidth from one core / all cores (whole machine).
        dram_latency_ns: random-access latency to DRAM.
        idle_w: idle power draw of the measured unit (whole board for the
            Pi; per-socket for servers).
        db_parallel_cap: maximum threads the DBMS effectively exploited
            per query on this machine. Raw microbenchmarks scale to all
            hardware threads, but the paper's Table II shows MonetDB's
            per-query scaling differs sharply per machine (e.g. the
            dual-socket z1d.metal underperforms its specs — NUMA); this
            cap encodes that observed behaviour and is used only by the
            DBMS runtime model, never by the microbenchmark models.
    """

    key: str
    category: str
    cpu: str
    freq_ghz: float
    cores: int
    sockets: int
    smt: int
    llc_mb: float
    msrp_usd: float | None
    hourly_usd: float | None
    tdp_w: float | None
    ipc_flt: float
    ipc_int: float
    ipc_div: float
    mem_bw_1core_gbs: float
    mem_bw_all_gbs: float
    dram_latency_ns: float
    idle_w: float
    db_parallel_cap: int = 64

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def total_cores(self) -> int:
        return self.cores * self.sockets

    @property
    def total_llc_bytes(self) -> float:
        return self.llc_mb * self.sockets * 1e6

    @property
    def total_msrp_usd(self) -> float | None:
        if self.msrp_usd is None:
            return None
        return self.msrp_usd * self.sockets

    @property
    def total_tdp_w(self) -> float | None:
        if self.tdp_w is None:
            return None
        return self.tdp_w * self.sockets

    def core_rate(self, kind: str = "int") -> float:
        """Single-core sustained throughput (proxy ops/second) for an
        instruction mix: ``flt`` | ``int`` | ``div``."""
        ipc = {"flt": self.ipc_flt, "int": self.ipc_int, "div": self.ipc_div}[kind]
        return self.freq_ghz * 1e9 * ipc

    def parallel_rate(self, kind: str = "int", threads: int | None = None,
                      smt_boost: float = 1.25, efficiency: float = 0.95) -> float:
        """Aggregate compute rate with ``threads`` threads (default: one
        per hardware thread). SMT contributes ``smt_boost`` per core, not
        2x — matching the paper's observation that Hyper-Threading helped
        CPU microbenchmarks moderately and memory bandwidth not at all."""
        max_threads = self.total_cores * self.smt
        threads = max_threads if threads is None else min(threads, max_threads)
        cores_used = min(threads, self.total_cores)
        boost = smt_boost if (self.smt > 1 and threads > self.total_cores) else 1.0
        return self.core_rate(kind) * cores_used * boost * efficiency

    def mem_bandwidth(self, threads: int = 1) -> float:
        """Sequential bandwidth in bytes/s for a thread count (saturates
        well below the core count; interpolate conservatively)."""
        if threads <= 1:
            return self.mem_bw_1core_gbs * 1e9
        saturation = max(2.0, self.total_cores / 2)
        frac = min(1.0, (threads - 1) / (saturation - 1)) if saturation > 1 else 1.0
        one, full = self.mem_bw_1core_gbs, self.mem_bw_all_gbs
        return (one + (full - one) * frac) * 1e9


def _p(**kwargs) -> PlatformSpec:
    return PlatformSpec(**kwargs)


# Spec-sheet columns are the paper's Table I; throughput columns are
# constrained by the paper's Fig. 2 narration (see module docstring).
PLATFORMS: dict[str, PlatformSpec] = {spec.key: spec for spec in [
    _p(key="op-e5", category="on-premises", cpu="Intel Xeon E5-2660 v2",
       freq_ghz=2.2, cores=10, sockets=2, smt=2, llc_mb=25.0,
       msrp_usd=1389.0, hourly_usd=None, tdp_w=95.0,
       ipc_flt=0.80, ipc_int=1.10, ipc_div=0.33,
       mem_bw_1core_gbs=10.0, mem_bw_all_gbs=48.0, dram_latency_ns=90.0,
       idle_w=40.0, db_parallel_cap=16),
    _p(key="op-gold", category="on-premises", cpu="Intel Xeon Gold 6150",
       freq_ghz=2.7, cores=18, sockets=2, smt=2, llc_mb=24.75,
       msrp_usd=3358.0, hourly_usd=None, tdp_w=165.0,
       ipc_flt=1.43, ipc_int=1.95, ipc_div=1.00,
       mem_bw_1core_gbs=15.0, mem_bw_all_gbs=144.0, dram_latency_ns=85.0,
       idle_w=60.0, db_parallel_cap=12),
    _p(key="c4.8xlarge", category="cloud", cpu="Intel Xeon E5-2666 v3",
       freq_ghz=2.9, cores=9, sockets=2, smt=2, llc_mb=25.0,
       msrp_usd=None, hourly_usd=1.591, tdp_w=None,
       ipc_flt=1.00, ipc_int=1.40, ipc_div=0.50,
       mem_bw_1core_gbs=12.0, mem_bw_all_gbs=55.0, dram_latency_ns=88.0,
       idle_w=45.0, db_parallel_cap=20),
    _p(key="m4.10xlarge", category="cloud", cpu="Intel Xeon E5-2676 v3",
       freq_ghz=2.4, cores=10, sockets=2, smt=2, llc_mb=30.0,
       msrp_usd=None, hourly_usd=2.00, tdp_w=None,
       ipc_flt=1.00, ipc_int=1.40, ipc_div=0.50,
       mem_bw_1core_gbs=11.0, mem_bw_all_gbs=50.0, dram_latency_ns=88.0,
       idle_w=45.0, db_parallel_cap=20),
    _p(key="m4.16xlarge", category="cloud", cpu="Intel Xeon E5-2686 v4",
       freq_ghz=2.3, cores=16, sockets=2, smt=2, llc_mb=45.0,
       msrp_usd=None, hourly_usd=3.20, tdp_w=None,
       ipc_flt=1.05, ipc_int=1.50, ipc_div=0.55,
       mem_bw_1core_gbs=11.0, mem_bw_all_gbs=65.0, dram_latency_ns=88.0,
       idle_w=50.0, db_parallel_cap=20),
    _p(key="z1d.metal", category="cloud", cpu="Intel Xeon Platinum 8151",
       freq_ghz=3.4, cores=12, sockets=2, smt=2, llc_mb=24.75,
       msrp_usd=None, hourly_usd=4.464, tdp_w=None,
       ipc_flt=1.45, ipc_int=2.00, ipc_div=0.80,
       mem_bw_1core_gbs=16.0, mem_bw_all_gbs=100.0, dram_latency_ns=85.0,
       idle_w=55.0, db_parallel_cap=5),
    _p(key="m5.metal", category="cloud", cpu="Intel Xeon Platinum 8259CL",
       freq_ghz=2.5, cores=24, sockets=2, smt=2, llc_mb=35.75,
       msrp_usd=None, hourly_usd=4.608, tdp_w=None,
       ipc_flt=1.45, ipc_int=2.00, ipc_div=1.00,
       mem_bw_1core_gbs=15.0, mem_bw_all_gbs=140.0, dram_latency_ns=85.0,
       idle_w=60.0, db_parallel_cap=16),
    _p(key="a1.metal", category="cloud", cpu="AWS Graviton (Cortex-A72)",
       freq_ghz=2.3, cores=16, sockets=1, smt=1, llc_mb=8.0,
       msrp_usd=None, hourly_usd=0.408, tdp_w=None,
       ipc_flt=0.80, ipc_int=1.10, ipc_div=0.60,
       mem_bw_1core_gbs=9.0, mem_bw_all_gbs=60.0, dram_latency_ns=95.0,
       idle_w=35.0, db_parallel_cap=14),
    _p(key="c6g.metal", category="cloud", cpu="AWS Graviton2 (Neoverse N1)",
       freq_ghz=2.5, cores=64, sockets=1, smt=1, llc_mb=32.0,
       msrp_usd=None, hourly_usd=2.176, tdp_w=None,
       ipc_flt=1.45, ipc_int=2.05, ipc_div=1.00,
       mem_bw_1core_gbs=18.0, mem_bw_all_gbs=198.0, dram_latency_ns=90.0,
       idle_w=50.0, db_parallel_cap=16),
    _p(key=PI_KEY, category="sbc", cpu="ARM Cortex-A53 (Raspberry Pi 3B+)",
       freq_ghz=1.4, cores=4, sockets=1, smt=1, llc_mb=0.512,
       msrp_usd=35.0, hourly_usd=5.1 / 1000.0 * KWH_PRICE_USD, tdp_w=5.1,
       ipc_flt=0.50, ipc_int=0.70, ipc_div=0.50,
       mem_bw_1core_gbs=1.7, mem_bw_all_gbs=2.0, dram_latency_ns=130.0,
       idle_w=1.9, db_parallel_cap=4),
    # The Pi 4B the paper's SIII-C1 discusses as the tailoring option:
    # Cortex-A72 at 1.5 GHz, real GbE (no USB bus), LPDDR4, 8 GB variant
    # at $75. Not part of the paper's measured testbed.
    _p(key="pi4b-8gb", category="sbc", cpu="ARM Cortex-A72 (Raspberry Pi 4B, 8 GB)",
       freq_ghz=1.5, cores=4, sockets=1, smt=1, llc_mb=1.0,
       msrp_usd=75.0, hourly_usd=7.6 / 1000.0 * KWH_PRICE_USD, tdp_w=7.6,
       ipc_flt=0.80, ipc_int=1.10, ipc_div=0.60,
       mem_bw_1core_gbs=3.2, mem_bw_all_gbs=4.2, dram_latency_ns=120.0,
       idle_w=2.7, db_parallel_cap=4),
]}

ON_PREMISES = ["op-e5", "op-gold"]
CLOUD = ["c4.8xlarge", "m4.10xlarge", "m4.16xlarge", "z1d.metal", "m5.metal",
         "a1.metal", "c6g.metal"]
SBC = [PI_KEY]
PI4_KEY = "pi4b-8gb"  # extension platform (SIII-C1), not in the paper's testbed
SERVER_KEYS = ON_PREMISES + CLOUD
ALL_KEYS = SERVER_KEYS + SBC


def get_platform(key: str) -> PlatformSpec:
    """Look up a comparison point by key (e.g. ``"op-e5"``, ``"pi3b+"``)."""
    try:
        return PLATFORMS[key]
    except KeyError:
        raise KeyError(f"unknown platform {key!r}; known: {ALL_KEYS}") from None
